// Package spe is the stream processing engine of a COSMOS processor
// (paper §2). Any CQL-subset query bound by package cql compiles into an
// executable Plan; an Engine hosts many plans and feeds them the tuples
// the data layer delivers, emitting result-stream tuples.
//
// Semantics follow CQL time-based sliding windows over application
// timestamps:
//
//   - selection/projection are applied per input tuple;
//   - window joins emit a combination exactly when the join predicates
//     hold and every pair of contributing tuples satisfies Lemma 1
//     (−T1 ≤ t1.ts − t2.ts ≤ T2);
//   - grouped aggregates follow the Istream-per-update model: each
//     surviving input tuple emits the updated aggregate row of its group,
//     evaluated over that group's live window.
//
// Plans are compiled against their input schemas at Install time, the
// way the CBN broker compiles aggregate profiles: every attribute
// reference on the per-tuple path resolves to a column index, selections
// and join/residual predicates evaluate through package predicate's
// compiled forms, equi-join inputs keep hash-partitioned buffers, and
// grouped aggregates maintain incremental per-group state. A
// name-resolved interpreted path remains behind the same Push API; it is
// the fallback whenever a predicate cannot be compiled or an input
// schema drifts to incompatible kinds, and the reference the compiled
// path is differentially tested against.
//
// The engine stands in for the single-site SPEs the paper plugs in
// (TelegraphCQ, STREAM, Aurora, GSN): COSMOS treats the SPE as a black
// box behind query/data wrappers, which is exactly the interface Engine
// exposes.
//
// The two-plane design now extends to execution: spe.Engine runs every
// plan of a stream sequentially under one lock and is the ordering and
// semantics reference, while internal/exec shards the same plans across
// a worker pool with per-plan locking and micro-batched ingestion. The
// contract between them is the emit callback: a plan's emission sequence
// is a total order (identical on both runtimes); cross-plan order is
// guaranteed only by the sequential engine and the runtime's synchronous
// mode. Plan.Push assumes single-threaded access per plan — whoever
// hosts a plan must serialise its pushes, which both runtimes do.
package spe

import (
	"fmt"

	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/stream"
	"cosmos/internal/window"
)

// inputState tracks one FROM stream's filter, window and live buffer.
type inputState struct {
	alias  string
	stream string
	win    stream.Duration
	sel    predicate.DNF
	schema *stream.Schema

	// buf[head:] holds the in-window tuples in arrival order (timestamps
	// non-decreasing per stream). Eviction advances head instead of
	// copying the suffix down on every push; base is the absolute
	// sequence number of buf[0], so hash buckets and group member lists
	// can reference tuples across compactions.
	buf  []stream.Tuple
	head int
	base uint64

	// Compiled-mode state; nil/zero while the plan runs interpreted.
	selC    *predicate.Compiled
	ad      adapter
	hash    *joinIndex
	evicted int // evictions since the last hash-index sweep
}

// live returns the in-window tuples in arrival order.
func (in *inputState) live() []stream.Tuple { return in.buf[in.head:] }

// liveMin returns the absolute sequence of the oldest live tuple.
func (in *inputState) liveMin() uint64 { return in.base + uint64(in.head) }

// at returns the live tuple with the given absolute sequence.
func (in *inputState) at(seq uint64) stream.Tuple { return in.buf[seq-in.base] }

// insert appends a tuple to the window buffer (and, in compiled join
// mode, its equi-partition bucket), returning its absolute sequence.
func (in *inputState) insert(t stream.Tuple) uint64 {
	seq := in.base + uint64(len(in.buf))
	in.buf = append(in.buf, t)
	if in.hash != nil {
		in.hash.insert(t, seq)
	}
	return seq
}

// Plan is one compiled continuous query.
type Plan struct {
	// ID is the caller-assigned plan identifier.
	ID string
	// Bound is the underlying analyzed query.
	Bound *cql.Bound
	// Result is the result stream schema (unique stream name applied).
	Result *stream.Schema

	inputs  []*inputState
	byAlias map[string]*inputState
	// aliasesOf maps a source stream name to the aliases consuming it
	// (several for self-joins).
	aliasesOf map[string][]string

	joined    *stream.Schema // scratch namespace for predicate evaluation
	joins     []predicate.AttrCmp
	residual  predicate.DNF
	agg       *aggState
	watermark stream.Timestamp

	// compiled reports whether the per-tuple path runs index-resolved;
	// false means the name-resolved interpreted path serves this plan
	// (uncompilable predicate, or an input schema drifted to kinds the
	// compiled comparisons cannot trust).
	compiled bool
	cp       *compiledPlan
}

// Compile builds an executable plan for a bound query. resultStream is
// the unique result stream name the processor registered.
func Compile(id string, b *cql.Bound, resultStream string) (*Plan, error) {
	p := &Plan{
		ID:        id,
		Bound:     b,
		Result:    b.OutSchema.Rename(resultStream),
		byAlias:   map[string]*inputState{},
		aliasesOf: map[string][]string{},
		joins:     b.Joins,
		residual:  b.Residual,
		watermark: -1 << 62,
	}
	// Each input normalises incoming tuples to the attributes the query
	// actually needs. The data layer may deliver projected tuples (early
	// projection); as long as the needed attributes survive, the plan
	// adapts them by name.
	need := b.NeededAttrs()
	for _, ref := range b.From {
		inSchema, err := b.Schemas[ref.Alias].Project(need[ref.Alias])
		if err != nil {
			return nil, fmt.Errorf("spe: %w", err)
		}
		in := &inputState{
			alias:  ref.Alias,
			stream: ref.Stream,
			win:    ref.Window,
			sel:    b.Sel[ref.Alias],
			schema: inSchema,
		}
		p.inputs = append(p.inputs, in)
		p.byAlias[ref.Alias] = in
		p.aliasesOf[ref.Stream] = append(p.aliasesOf[ref.Stream], ref.Alias)
	}
	if b.IsAggregate() {
		if len(b.From) != 1 {
			return nil, fmt.Errorf("spe: aggregates over joins are not supported (query %s)", id)
		}
		agg, err := newAggState(b, p.inputs[0].schema)
		if err != nil {
			return nil, err
		}
		p.agg = agg
	} else {
		// Scratch namespace: concatenation of the qualified (projected)
		// input schemas the plan actually buffers.
		aliases := make([]string, len(b.From))
		schemas := make([]*stream.Schema, len(b.From))
		for i, ref := range b.From {
			aliases[i] = ref.Alias
			schemas[i] = p.inputs[i].schema
		}
		joined, err := stream.JoinSchema("__joined", aliases, schemas)
		if err != nil {
			return nil, fmt.Errorf("spe: %w", err)
		}
		p.joined = joined
	}
	// Control-plane compilation of the per-tuple path. Failure is not an
	// error: the plan runs interpreted, which preserves the runtime
	// error semantics the compiler refused to guarantee.
	if err := p.buildCompiled(b); err == nil {
		p.compiled = true
	}
	return p, nil
}

// Compiled reports whether the plan's per-tuple path is index-resolved.
// It flips to false permanently if an input schema drifts to kinds the
// compiled comparisons cannot trust.
func (p *Plan) Compiled() bool { return p.compiled }

// degrade switches the plan to the interpreted path permanently,
// discarding the compiled artifacts (the shared window buffers and
// aggregate state carry over untouched).
func (p *Plan) degrade() {
	p.compiled = false
	p.cp = nil
	for _, in := range p.inputs {
		in.selC = nil
		in.hash = nil
		in.ad = adapter{}
	}
}

// InputStreams lists the distinct source stream names the plan consumes.
func (p *Plan) InputStreams() []string {
	out := make([]string, 0, len(p.aliasesOf))
	for s := range p.aliasesOf {
		out = append(out, s)
	}
	return out
}

// Push processes one input tuple, returning emitted result tuples. Tuples
// must arrive with per-stream non-decreasing timestamps; cross-stream
// interleaving is tolerated (the watermark is the max seen timestamp).
//
//cosmos:hotpath-ok — SPE boundary: operator graphs allocate by design; budget pinned by the spe benchmarks
func (p *Plan) Push(t stream.Tuple) ([]stream.Tuple, error) {
	aliases, ok := p.aliasesOf[t.Schema.Stream]
	if !ok {
		return nil, nil // not an input of this plan
	}
	if t.Ts > p.watermark {
		p.watermark = t.Ts
	}
	if len(aliases) == 1 {
		// Common case (no self-join): skip the cross-alias collector.
		in := p.byAlias[aliases[0]]
		adapted, err := p.adapt(in, t)
		if err != nil {
			return nil, fmt.Errorf("spe %s: input tuple lacks needed attributes: %w", p.ID, err)
		}
		return p.pushAlias(in, adapted)
	}
	var out []stream.Tuple
	for _, alias := range aliases {
		in := p.byAlias[alias]
		adapted, err := p.adapt(in, t)
		if err != nil {
			return nil, fmt.Errorf("spe %s: input tuple lacks needed attributes: %w", p.ID, err)
		}
		emitted, err := p.pushAlias(in, adapted)
		if err != nil {
			return nil, err
		}
		out = append(out, emitted...)
	}
	return out, nil
}

func (p *Plan) pushAlias(in *inputState, t stream.Tuple) ([]stream.Tuple, error) {
	if p.compiled {
		return p.pushCompiled(in, t)
	}
	return p.pushInterpreted(in, t)
}

// pushInterpreted is the name-resolved path: selection through the DNF
// evaluator, nested-loop window join probes, and name lookups in the
// shared aggregate core. It is the fallback for uncompilable predicates
// and drifted schemas, and the differential-test reference.
func (p *Plan) pushInterpreted(in *inputState, t stream.Tuple) ([]stream.Tuple, error) {
	// Selection first (filter pushdown mirrors the data layer's filters;
	// when tuples already passed CBN filters this is a cheap recheck
	// against exactly the same DNF).
	if in.sel != nil && !in.sel.IsTrue() {
		ok, err := in.sel.Eval(t)
		if err != nil {
			return nil, fmt.Errorf("spe %s: %w", p.ID, err)
		}
		if !ok {
			return nil, nil
		}
	}
	if p.agg != nil {
		if err := p.evict(in); err != nil {
			return nil, err
		}
		seq := in.insert(t)
		res, err := p.agg.update(in, t, seq, false)
		if err != nil {
			return nil, err
		}
		// Rebind from the bound's placeholder schema to the plan's
		// registered result stream schema.
		for i := range res {
			res[i].Schema = p.Result
		}
		return res, nil
	}
	if len(p.inputs) == 1 {
		// Pure select-project.
		res, err := p.emitCombo([]stream.Tuple{t})
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	// Window join: evict, probe the other inputs, then insert.
	for _, other := range p.inputs {
		if err := p.evict(other); err != nil {
			return nil, err
		}
	}
	combos, err := p.probe(in, t)
	if err != nil {
		return nil, err
	}
	in.insert(t)
	var out []stream.Tuple
	for _, combo := range combos {
		res, err := p.emitCombo(combo)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// evict drops tuples that can no longer join anything given the
// watermark: a tuple of a stream with window T is dead once
// watermark − ts > T (Lemma 1 upper bound on its own window). Eviction
// advances the buffer head and unwinds incremental aggregate state; the
// buffer compacts once the dead prefix dominates.
func (p *Plan) evict(in *inputState) error {
	for in.head < len(in.buf) && window.Expired(in.buf[in.head].Ts, p.watermark, in.win) {
		t := in.buf[in.head]
		if p.agg != nil {
			if err := p.agg.evictMember(t, p.compiled); err != nil {
				return err
			}
		}
		in.buf[in.head] = stream.Tuple{}
		in.head++
		if in.hash != nil {
			in.evicted++
		}
	}
	in.maybeCompact()
	return nil
}

// compactMinHead is the dead-prefix length below which eviction never
// copies the buffer down; beyond it, compaction runs once the dead
// prefix reaches half the buffer (amortised O(1) per push).
const compactMinHead = 32

func (in *inputState) maybeCompact() {
	if in.head == len(in.buf) {
		// Fully drained: reset in place, reusing capacity (slots were
		// zeroed during eviction).
		in.base += uint64(in.head)
		in.buf = in.buf[:0]
		in.head = 0
	} else if in.head >= compactMinHead && in.head*2 >= len(in.buf) {
		n := copy(in.buf, in.buf[in.head:])
		for i := n; i < len(in.buf); i++ {
			in.buf[i] = stream.Tuple{}
		}
		in.base += uint64(in.head)
		in.buf = in.buf[:n]
		in.head = 0
	}
	if in.hash != nil && in.evicted > (len(in.buf)-in.head)+compactMinHead {
		in.hash.sweep(in.liveMin())
		in.evicted = 0
	}
}

// probe assembles all join combinations containing the new tuple t at
// alias in.alias: one in-window partner from every other input, pairwise
// Lemma 1 joinability, join predicates evaluated on the assembled tuple.
func (p *Plan) probe(in *inputState, t stream.Tuple) ([][]stream.Tuple, error) {
	combos := [][]stream.Tuple{make([]stream.Tuple, len(p.inputs))}
	selfIdx := p.indexOf(in.alias)
	combos[0][selfIdx] = t

	for i, other := range p.inputs {
		if i == selfIdx {
			continue
		}
		var next [][]stream.Tuple
		for _, combo := range combos {
			for _, u := range other.live() {
				if !p.pairwiseJoinable(combo, i, u, other) {
					continue
				}
				extended := make([]stream.Tuple, len(combo))
				copy(extended, combo)
				extended[i] = u
				next = append(next, extended)
			}
		}
		combos = next
		if len(combos) == 0 {
			return nil, nil
		}
	}
	// Join predicates + residual on the assembled namespace.
	var out [][]stream.Tuple
	for _, combo := range combos {
		joined := p.assemble(combo)
		ok, err := p.predicatesHold(joined)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, combo)
		}
	}
	return out, nil
}

// pairwiseJoinable checks Lemma 1 between candidate u (for input slot i)
// and every tuple already placed in the combo.
func (p *Plan) pairwiseJoinable(combo []stream.Tuple, i int, u stream.Tuple, other *inputState) bool {
	for j, placed := range combo {
		if placed.Schema == nil || j == i {
			continue
		}
		if !window.Joinable(placed.Ts, u.Ts, p.inputs[j].win, other.win) {
			return false
		}
	}
	return true
}

func (p *Plan) indexOf(alias string) int {
	for i, in := range p.inputs {
		if in.alias == alias {
			return i
		}
	}
	return -1
}

// assemble concatenates a combination into the joined scratch namespace.
func (p *Plan) assemble(combo []stream.Tuple) stream.Tuple {
	values := make([]stream.Value, 0, p.joined.Arity())
	ts := stream.Timestamp(-1 << 62)
	for _, t := range combo {
		values = append(values, t.Values...)
		if t.Ts > ts {
			ts = t.Ts
		}
	}
	return stream.Tuple{Schema: p.joined, Ts: ts, Values: values}
}

// predicatesHold evaluates join predicates and the residual DNF.
func (p *Plan) predicatesHold(joined stream.Tuple) (bool, error) {
	for _, j := range p.joins {
		ok, err := j.Eval(joined)
		if err != nil {
			return false, fmt.Errorf("spe %s: %w", p.ID, err)
		}
		if !ok {
			return false, nil
		}
	}
	if len(p.residual) > 0 && !p.residual.IsTrue() {
		ok, err := p.residual.Eval(joined)
		if err != nil {
			return false, fmt.Errorf("spe %s: %w", p.ID, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// emitCombo projects a (possibly single-tuple) combination into the
// result schema.
func (p *Plan) emitCombo(combo []stream.Tuple) ([]stream.Tuple, error) {
	b := p.Bound
	values := make([]stream.Value, 0, p.Result.Arity())
	ts := stream.Timestamp(-1 << 62)
	for _, t := range combo {
		if t.Ts > ts {
			ts = t.Ts
		}
	}
	for _, c := range b.SelectCols {
		idx := p.indexOf(c.Qualifier)
		if idx < 0 {
			return nil, fmt.Errorf("spe %s: unknown alias %s", p.ID, c.Qualifier)
		}
		v, ok := combo[idx].Get(c.Name)
		if !ok {
			return nil, fmt.Errorf("spe %s: input of %s lacks %s", p.ID, c.Qualifier, c.Name)
		}
		values = append(values, v)
	}
	if b.IncludeInputTs && len(b.From) > 1 {
		for i, ref := range b.From {
			if ref.Window == stream.Now {
				continue // no hidden column; ts equals the result ts
			}
			values = append(values, stream.Time(combo[i].Ts))
		}
	}
	out, err := stream.NewTuple(p.Result, ts, values...)
	if err != nil {
		return nil, fmt.Errorf("spe %s: %w", p.ID, err)
	}
	return []stream.Tuple{out}, nil
}
