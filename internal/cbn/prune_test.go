package cbn

import (
	"testing"

	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

func TestPruneStreamRemovesState(t *testing.T) {
	net := lineNet(3)
	src := net.AttachClient(0)
	sub := net.AttachClient(2)
	delivered := 0
	sub.OnTuple = func(stream.Tuple) { delivered++ }
	src.Advertise("Sensor1")
	sub.Subscribe(tempProfile(10, nil))
	src.Publish(sensorTuple(1, 1, 20, 0))
	if delivered != 1 {
		t.Fatalf("pre-prune delivery = %d", delivered)
	}

	net.PruneStream("Sensor1")

	// No broker may route or know the stream anymore.
	for i := 0; i < net.NumNodes(); i++ {
		if net.Broker(i).KnowsSource("Sensor1") {
			t.Errorf("broker %d still has a route", i)
		}
	}
	src.Publish(sensorTuple(2, 1, 20, 0))
	if delivered != 1 {
		t.Errorf("delivery after prune = %d", delivered)
	}
}

func TestPruneStreamKeepsOtherStreams(t *testing.T) {
	// A profile spanning two streams must keep the surviving stream's
	// interest after the other is pruned.
	b := NewBroker(0)
	b.AttachIface(0)
	b.AttachIface(1)
	b.HandleAdvertise("A", 0)
	b.HandleAdvertise("B", 0)
	p := profile.New()
	p.AddStream("A", nil, nil)
	p.AddStream("B", nil, predicate.DNF{
		{predicate.C("x", predicate.GT, stream.Int(5))},
	})
	b.HandleSubscribe(p, 1)
	b.PruneStream("A")

	schemaB := stream.MustSchema("B", stream.Field{Name: "x", Kind: stream.KindInt})
	d, err := b.RouteTuple(stream.MustTuple(schemaB, 1, stream.Int(9)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Errorf("B interest lost after pruning A: %d deliveries", len(d))
	}
	schemaA := stream.MustSchema("A", stream.Field{Name: "y", Kind: stream.KindInt})
	d, _ = b.RouteTuple(stream.MustTuple(schemaA, 1, stream.Int(1)), 0)
	if len(d) != 0 {
		t.Errorf("pruned stream still routed: %d", len(d))
	}
}

// TestGroupChurnDoesNotAccumulateBrokerState drives repeated group
// version bumps through a broker and checks its subscription tables stay
// bounded — the purpose of result-stream pruning.
func TestGroupChurnDoesNotAccumulateBrokerState(t *testing.T) {
	b := NewBroker(0)
	b.AttachIface(0) // toward processor
	b.AttachIface(1) // toward user
	for v := 0; v < 100; v++ {
		name := streamName(v)
		b.HandleAdvertise(name, 0)
		p := profile.New()
		p.AddStream(name, nil, nil)
		b.HandleSubscribe(p, 1)
		if v > 0 {
			b.PruneStream(streamName(v - 1))
		}
	}
	// Only the latest version's state may remain.
	b.mu.Lock()
	subs := len(b.subs[1])
	adverts := len(b.adverts)
	b.mu.Unlock()
	if subs != 1 {
		t.Errorf("subscriptions accumulated: %d", subs)
	}
	if adverts != 1 {
		t.Errorf("adverts accumulated: %d", adverts)
	}
}

func streamName(v int) string {
	return "res-v" + string(rune('A'+v%26)) + string(rune('a'+(v/26)%26))
}
