// Command cosmosctl is the CLI client of cosmosd.
//
//	cosmosctl -addr :7654 register -stream 'Trades(symbol string, price float)' -rate 100 -node 0
//	cosmosctl -addr :7654 publish  -stream Trades -ts 1000 -values 'ACME,101.5'
//	cosmosctl -addr :7654 query    -cql 'SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100' -node 3 -count 10
//	cosmosctl -addr :7654 stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cosmos/internal/stream"
	"cosmos/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "cosmosd address")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	client, err := transport.Dial(*addr)
	if err != nil {
		log.Fatalf("cosmosctl: %v", err)
	}
	defer client.Close()

	switch args[0] {
	case "register":
		cmdRegister(client, args[1:])
	case "publish":
		cmdPublish(client, args[1:])
	case "query":
		cmdQuery(client, args[1:])
	case "stats":
		cmdStats(client)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cosmosctl [-addr host:port] register|publish|query|stats [flags]")
	os.Exit(2)
}

// parseSchemaDDL parses "Name(attr kind, attr kind, ...)".
func parseSchemaDDL(ddl string) (*stream.Schema, error) {
	open := strings.Index(ddl, "(")
	if open < 0 || !strings.HasSuffix(ddl, ")") {
		return nil, fmt.Errorf("schema must look like Name(attr kind, ...)")
	}
	name := strings.TrimSpace(ddl[:open])
	body := ddl[open+1 : len(ddl)-1]
	var fields []stream.Field
	for _, part := range strings.Split(body, ",") {
		bits := strings.Fields(strings.TrimSpace(part))
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad field %q", part)
		}
		kind, err := stream.ParseKind(bits[1])
		if err != nil {
			return nil, err
		}
		fields = append(fields, stream.Field{Name: bits[0], Kind: kind})
	}
	return stream.NewSchema(name, fields...)
}

func cmdRegister(c *transport.Client, args []string) {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	ddl := fs.String("stream", "", "schema DDL: Name(attr kind, ...)")
	rate := fs.Float64("rate", 1, "publication rate, tuples/sec")
	node := fs.Int("node", 0, "overlay node hosting the source")
	fs.Parse(args)
	schema, err := parseSchemaDDL(*ddl)
	if err != nil {
		log.Fatalf("cosmosctl: %v", err)
	}
	info := &stream.Info{Schema: schema, Rate: *rate}
	if err := c.Register(info, *node); err != nil {
		log.Fatalf("cosmosctl: %v", err)
	}
	fmt.Printf("registered %s at node %d\n", schema, *node)
}

func cmdPublish(c *transport.Client, args []string) {
	fs := flag.NewFlagSet("publish", flag.ExitOnError)
	name := fs.String("stream", "", "stream name")
	ts := fs.Int64("ts", 0, "application timestamp (ms)")
	raw := fs.String("values", "", "comma-separated attribute values")
	ddl := fs.String("schema", "", "schema DDL (required: Name(attr kind, ...))")
	fs.Parse(args)
	schema, err := parseSchemaDDL(*ddl)
	if err != nil {
		log.Fatalf("cosmosctl: -schema required to encode values: %v", err)
	}
	if schema.Stream != *name && *name != "" {
		log.Fatalf("cosmosctl: -stream %q does not match schema %q", *name, schema.Stream)
	}
	parts := strings.Split(*raw, ",")
	if len(parts) != schema.Arity() {
		log.Fatalf("cosmosctl: %d values for %d attributes", len(parts), schema.Arity())
	}
	values := make([]stream.Value, len(parts))
	for i, part := range parts {
		v, err := parseValue(schema.Fields[i].Kind, strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("cosmosctl: %v", err)
		}
		values[i] = v
	}
	t, err := stream.NewTuple(schema, stream.Timestamp(*ts), values...)
	if err != nil {
		log.Fatalf("cosmosctl: %v", err)
	}
	if err := c.Publish(t); err != nil {
		log.Fatalf("cosmosctl: %v", err)
	}
	fmt.Println("published", t)
}

func parseValue(kind stream.Kind, s string) (stream.Value, error) {
	switch kind {
	case stream.KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		return stream.Int(n), err
	case stream.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		return stream.Float(f), err
	case stream.KindBool:
		b, err := strconv.ParseBool(s)
		return stream.Bool(b), err
	case stream.KindTime:
		n, err := strconv.ParseInt(s, 10, 64)
		return stream.Time(stream.Timestamp(n)), err
	default:
		return stream.String_(s), nil
	}
}

func cmdQuery(c *transport.Client, args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	cqlText := fs.String("cql", "", "continuous query text")
	node := fs.Int("node", 0, "user's overlay node")
	count := fs.Int("count", 0, "exit after N results (0 = run forever)")
	fs.Parse(args)
	done := make(chan struct{})
	received := 0
	tag, err := c.Submit(*cqlText, *node, func(t stream.Tuple) {
		fmt.Println(t)
		received++
		if *count > 0 && received >= *count {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	})
	if err != nil {
		log.Fatalf("cosmosctl: %v", err)
	}
	fmt.Fprintf(os.Stderr, "query %s running; streaming results...\n", tag)
	<-done
	if err := c.Cancel(tag); err != nil {
		log.Printf("cosmosctl: cancel: %v", err)
	}
}

func cmdStats(c *transport.Client) {
	st, err := c.Stats()
	if err != nil {
		log.Fatalf("cosmosctl: %v", err)
	}
	fmt.Printf("queries:    %d\n", st.Queries)
	fmt.Printf("processors: %d\n", st.Processors)
	for i := range st.LoadPerProc {
		fmt.Printf("  p%d: load=%d groups=%d\n", i, st.LoadPerProc[i], st.GroupsPerProc[i])
	}
	fmt.Printf("data bytes: %d\n", st.TotalDataBytes)
}
