package core

import "cosmos/internal/cbn"

// SystemStats summarises a running deployment in the transport-
// independent shape the client API reports on every backend: the
// embedded clients fill it from the live System, and cmd/cosmosd ships
// it over the wire verbatim (all fields are plain data).
type SystemStats struct {
	// Queries is the number of live continuous queries.
	Queries int
	// Processors is the number of processor nodes (alive or crashed).
	Processors int
	// GroupsPerProc / LoadPerProc list, per processor, the installed
	// query groups and the assigned-query load.
	GroupsPerProc []int
	LoadPerProc   []int
	// TotalDataBytes sums tuple traffic over all overlay links.
	TotalDataBytes int64
	// Links holds per-link counters, sorted by (A, B). Both transports
	// account them: SimNet synchronously, LiveNet with per-link atomics.
	Links []cbn.LinkStats
}

// StatsSnapshot captures the deployment's statistics. On the live
// transport the per-link counters are read atomically but the snapshot
// is not a consistent cut under traffic; Quiesce first for exact
// readouts.
func (s *System) StatsSnapshot() SystemStats {
	st := SystemStats{
		Queries:        s.Queries(),
		Processors:     len(s.procs),
		TotalDataBytes: s.TotalDataBytes(),
	}
	for _, p := range s.procs {
		st.GroupsPerProc = append(st.GroupsPerProc, p.Groups())
		st.LoadPerProc = append(st.LoadPerProc, p.Load())
	}
	for _, ls := range s.NetStats() {
		st.Links = append(st.Links, *ls)
	}
	return st
}
