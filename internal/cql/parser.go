package cql

import (
	"fmt"
	"strconv"
	"strings"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// Parse parses a CQL statement into a Query AST. The error includes the
// byte offset of the offending token.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Raw = src
	return q, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

// keyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s", kw)
	}
	p.advance()
	return nil
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, p.errf("expected %s", kind)
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.peek()
	loc := fmt.Sprintf(" at offset %d", t.pos)
	if t.kind == tokEOF {
		loc = " at end of input"
	} else {
		loc += fmt.Sprintf(" (near %q)", t.text)
	}
	return fmt.Errorf("cql: "+format+loc, args...)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseStreamRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if p.keyword("WHERE") {
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.keyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	return q, nil
}

// reserved words that terminate identifier-consuming productions.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AND": true, "OR": true, "AS": true, "RANGE": true, "NOW": true,
	"UNBOUNDED": true, "NOT": true,
}

func isReserved(s string) bool { return reserved[strings.ToUpper(s)] }

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	// "*"
	if t.kind == tokStar {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if t.kind != tokIdent {
		return SelectItem{}, p.errf("expected select item")
	}
	// Aggregate?
	if agg, ok := validAgg(strings.ToUpper(t.text)); ok && p.toks[p.i+1].kind == tokLParen {
		p.advance() // func name
		p.advance() // (
		item := SelectItem{Agg: agg}
		if p.peek().kind == tokStar {
			if agg != AggCount {
				return SelectItem{}, p.errf("%s(*) is not allowed; only COUNT(*)", agg)
			}
			p.advance()
			item.AggStar = true
		} else {
			c, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.AggArg = c
		}
		if _, err := p.expect(tokRParen); err != nil {
			return SelectItem{}, err
		}
		if err := p.parseOptionalAs(&item); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	// Qualified star "O.*" or plain/qualified column.
	ident := p.advance().text
	if p.peek().kind == tokDot {
		p.advance()
		if p.peek().kind == tokStar {
			p.advance()
			return SelectItem{Star: true, Qualifier: ident}, nil
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Col: ColRef{Qualifier: ident, Name: name.text}}
		if err := p.parseOptionalAs(&item); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	item := SelectItem{Col: ColRef{Name: ident}}
	if err := p.parseOptionalAs(&item); err != nil {
		return SelectItem{}, err
	}
	return item, nil
}

func (p *parser) parseOptionalAs(item *SelectItem) error {
	if !p.keyword("AS") {
		return nil
	}
	p.advance()
	t, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if isReserved(t.text) {
		return p.errf("reserved word %q cannot be an output name", t.text)
	}
	item.As = t.text
	return nil
}

func (p *parser) parseColRef() (ColRef, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return ColRef{}, err
	}
	if isReserved(t.text) {
		return ColRef{}, p.errf("reserved word %q cannot be a column", t.text)
	}
	if p.peek().kind == tokDot {
		p.advance()
		name, err := p.expect(tokIdent)
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: t.text, Name: name.text}, nil
	}
	return ColRef{Name: t.text}, nil
}

// parseStreamRef parses "Stream [window] [alias]".
func (p *parser) parseStreamRef() (StreamRef, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return StreamRef{}, err
	}
	if isReserved(t.text) {
		return StreamRef{}, p.errf("reserved word %q cannot be a stream name", t.text)
	}
	ref := StreamRef{Stream: t.text, Window: stream.Unbounded}
	if p.peek().kind == tokLBracket {
		p.advance()
		w, err := p.parseWindow()
		if err != nil {
			return StreamRef{}, err
		}
		ref.Window = w
		if _, err := p.expect(tokRBracket); err != nil {
			return StreamRef{}, err
		}
	}
	// Optional alias: a following non-reserved identifier.
	if nt := p.peek(); nt.kind == tokIdent && !isReserved(nt.text) {
		ref.Alias = p.advance().text
	}
	if ref.Alias == "" {
		ref.Alias = ref.Stream
	}
	return ref, nil
}

func (p *parser) parseWindow() (stream.Duration, error) {
	switch {
	case p.keyword("NOW"):
		p.advance()
		return stream.Now, nil
	case p.keyword("UNBOUNDED"):
		p.advance()
		return stream.Unbounded, nil
	case p.keyword("RANGE"):
		p.advance()
		n, err := p.expect(tokNumber)
		if err != nil {
			return 0, err
		}
		val, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil {
			return 0, p.errf("window size %q is not an integer", n.text)
		}
		if val < 0 {
			return 0, p.errf("window size must be positive")
		}
		unit, err := p.expect(tokIdent)
		if err != nil {
			return 0, err
		}
		mult, err := parseUnit(unit.text)
		if err != nil {
			return 0, p.errf("%v", err)
		}
		return stream.Duration(val) * mult, nil
	default:
		return 0, p.errf("expected Now, Unbounded or Range")
	}
}

func parseUnit(u string) (stream.Duration, error) {
	switch strings.ToUpper(u) {
	case "MS", "MSEC", "MSECS", "MILLISECOND", "MILLISECONDS":
		return stream.Millisecond, nil
	case "SEC", "SECS", "SECOND", "SECONDS":
		return stream.Second, nil
	case "MIN", "MINS", "MINUTE", "MINUTES":
		return stream.Minute, nil
	case "HOUR", "HOURS":
		return stream.Hour, nil
	case "DAY", "DAYS":
		return stream.Day, nil
	}
	return 0, fmt.Errorf("unknown time unit %q", u)
}

// parseOr handles OR with lower precedence than AND.
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		p.advance()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.peek().kind == tokLParen {
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	if p.keyword("NOT") {
		return nil, p.errf("NOT is not supported in the CQL subset")
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokCmp)
	if err != nil {
		return nil, err
	}
	op, err := parseOp(opTok.text)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Left: left, Op: op, Right: right}, nil
}

func parseOp(s string) (predicate.Op, error) {
	switch s {
	case "=":
		return predicate.EQ, nil
	case "!=":
		return predicate.NE, nil
	case "<":
		return predicate.LT, nil
	case "<=":
		return predicate.LE, nil
	case ">":
		return predicate.GT, nil
	case ">=":
		return predicate.GE, nil
	}
	return 0, fmt.Errorf("unknown operator %q", s)
}

// parseOperand parses a literal, a column, or a column difference A - B.
// A leading '-' introduces a negative numeric literal.
func (p *parser) parseOperand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokMinus:
		p.advance()
		n, err := p.expect(tokNumber)
		if err != nil {
			return Operand{}, err
		}
		v, err := numberValue(n.text, true)
		if err != nil {
			return Operand{}, p.errf("%v", err)
		}
		return LitOperand(v), nil
	case tokNumber:
		p.advance()
		v, err := numberValue(t.text, false)
		if err != nil {
			return Operand{}, p.errf("%v", err)
		}
		return LitOperand(v), nil
	case tokString:
		p.advance()
		return LitOperand(stream.String_(t.text)), nil
	case tokIdent:
		if strings.EqualFold(t.text, "TRUE") {
			p.advance()
			return LitOperand(stream.Bool(true)), nil
		}
		if strings.EqualFold(t.text, "FALSE") {
			p.advance()
			return LitOperand(stream.Bool(false)), nil
		}
		c, err := p.parseColRef()
		if err != nil {
			return Operand{}, err
		}
		op := ColOperand(c)
		// Column difference "A - B": only when followed by another column.
		if p.peek().kind == tokMinus && p.toks[p.i+1].kind == tokIdent && !isReserved(p.toks[p.i+1].text) {
			p.advance()
			c2, err := p.parseColRef()
			if err != nil {
				return Operand{}, err
			}
			op.IsDiff = true
			op.Col2 = c2
		}
		return op, nil
	default:
		return Operand{}, p.errf("expected literal or column")
	}
}

func numberValue(text string, neg bool) (stream.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return stream.Value{}, fmt.Errorf("bad number %q", text)
		}
		if neg {
			f = -f
		}
		return stream.Float(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return stream.Value{}, fmt.Errorf("bad number %q", text)
	}
	if neg {
		n = -n
	}
	return stream.Int(n), nil
}
