package exec

import (
	"sort"

	"cosmos/internal/obs"
)

// PlanStats is one installed plan's execution series. Plain data —
// gob/json-encodable, shipped inside core.SystemStats.
type PlanStats struct {
	// Plan is the installed plan ID.
	Plan string
	// Worker is the owning worker index, or -1 in synchronous mode.
	Worker int
	// Dead marks a plan degraded by a contained panic.
	Dead bool
	// Pushes / Emits / Errors count tuples pushed into the plan, result
	// tuples it emitted, and failed pushes.
	Pushes int64
	Emits  int64
	Errors int64
	// PushLat is the sampled push latency (plan execution + emission
	// into the sink, under the plan lock). Empty when latency sampling
	// is off or no push has been sampled yet.
	PushLat obs.HistSnapshot
}

// WorkerStats is one worker shard's series.
type WorkerStats struct {
	Worker int
	// QueueDepth/QueueCap gauge the task queue at snapshot time.
	QueueDepth int
	QueueCap   int
	// Tuples counts tuples dispatched through this worker (a tuple
	// fanned out to plans on k workers counts once per worker).
	Tuples int64
}

// StatsSnapshot reports per-plan and per-worker series, plans sorted by
// ID. It takes each plan's lock briefly (never the queues), so it is
// safe to call while the runtime executes.
func (r *Runtime) StatsSnapshot() ([]PlanStats, []WorkerStats) {
	r.mu.RLock()
	slots := make([]*planSlot, 0, len(r.slots))
	for _, s := range r.slots {
		slots = append(slots, s)
	}
	r.mu.RUnlock()
	sort.Slice(slots, func(i, j int) bool { return slots[i].id < slots[j].id })

	plans := make([]PlanStats, 0, len(slots))
	for _, s := range slots {
		s.mu.Lock()
		ps := PlanStats{
			Plan:   s.id,
			Worker: -1,
			Dead:   s.dead,
			Pushes: s.pushes,
			Emits:  s.emits,
			Errors: s.errs,
		}
		if s.lat != nil {
			ps.PushLat = s.lat.Snapshot()
		}
		s.mu.Unlock()
		if s.w != nil {
			ps.Worker = s.w.idx
		}
		plans = append(plans, ps)
	}

	workers := make([]WorkerStats, len(r.workers))
	for i, w := range r.workers {
		workers[i] = WorkerStats{
			Worker:     w.idx,
			QueueDepth: len(w.ch),
			QueueCap:   cap(w.ch),
			Tuples:     w.tuples.Load(),
		}
	}
	return plans, workers
}
