package core

import (
	"fmt"
	"sort"

	"cosmos/internal/profile"
)

// Query-layer fault tolerance (paper §2): processors checkpoint the
// execution state of their installed representative plans; when a
// processor fails, a surviving processor adopts its groups — recompiling
// the plans, restoring the latest checkpoints, re-advertising the SAME
// result stream names (so user subscriptions keep working; the CBN
// re-routes subscriptions toward the new advertiser), and re-subscribing
// the input profiles.
//
// The checkpoint store is shared in-process, standing in for a
// replicated checkpoint log. Adopted groups are frozen: they keep
// serving and can shrink (members cancel), but no longer accept new
// members — re-balancing adopted queries back into the optimiser is
// deliberate future work the paper also leaves open.

// FailProcessor simulates the crash of a processor and fails its query
// groups over to the next alive processor. It errors when no survivor
// exists or the processor is already down.
func (s *System) FailProcessor(procID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if procID < 0 || procID >= len(s.procs) {
		return fmt.Errorf("core: processor %d out of range", procID)
	}
	failed := s.procs[procID]
	if !failed.alive {
		return fmt.Errorf("core: processor %d already failed", procID)
	}
	var backup *Processor
	for i := 1; i < len(s.procs); i++ {
		cand := s.procs[(procID+i)%len(s.procs)]
		if cand.Alive() {
			backup = cand
			break
		}
	}
	if backup == nil {
		return fmt.Errorf("core: no surviving processor to adopt queries")
	}

	// The failed processor stops consuming and emitting; its runtime is
	// torn down, dropping any queued work (crash semantics).
	failed.mu.Lock()
	failed.alive = false
	failed.mu.Unlock()
	failed.client.SetOnTuple(nil)
	failed.shutdownExec()

	// Recompile + restore every checkpointed plan on the survivor.
	if _, err := failed.cp.Failover(backup.rt); err != nil {
		return fmt.Errorf("core: failover: %w", err)
	}

	// Adopt group bookkeeping: advertise result streams from the new
	// location and pull inputs there. Sorted for determinism.
	failed.mu.Lock()
	ids := make([]int, 0, len(failed.groups))
	for id := range failed.groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	groups := make([]*groupState, 0, len(ids))
	for _, id := range ids {
		groups = append(groups, failed.groups[id])
	}
	failed.groups = map[int]*groupState{}
	failed.load = 0
	failed.mu.Unlock()

	for _, gs := range groups {
		backup.mu.Lock()
		backup.adopted[gs.resultStream] = gs
		backup.load += len(gs.memberTags)
		backup.mu.Unlock()
		backup.cp.Register(gs.plan, gs.rep, gs.resultStream)
		// Advertising from the backup's node makes the CBN re-route
		// member subscriptions toward it.
		backup.client.Advertise(gs.resultStream)
		backup.client.Subscribe(profile.FromQuery(gs.rep))
		// Re-home the query handles.
		for _, tag := range gs.memberTags {
			if h, ok := s.queries[tag]; ok {
				h.proc = backup
			}
		}
	}
	return nil
}

// removeAdopted cancels a member of an adopted (failed-over) group.
func (p *Processor) removeAdopted(tag string) (*groupState, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, gs := range p.adopted {
		for i, member := range gs.memberTags {
			if member != tag {
				continue
			}
			gs.memberTags = append(gs.memberTags[:i], gs.memberTags[i+1:]...)
			p.load--
			if len(gs.memberTags) == 0 {
				p.rt.Remove(gs.plan)
				p.cp.Drop(gs.plan)
				p.sys.reg.Deregister(gs.resultStream)
				p.sys.net.PruneStream(gs.resultStream)
				delete(p.adopted, gs.resultStream)
				return nil, nil
			}
			// The representative stays frozen; survivors keep their
			// re-tightening profiles, which remain exact.
			return gs, nil
		}
	}
	return nil, fmt.Errorf("core: processor %d does not own %s", p.ID, tag)
}

// Alive reports whether the processor is serving.
func (p *Processor) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}
