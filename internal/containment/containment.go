// Package containment decides continuous-query containment, the formal
// core of the paper's query-merging technique (§4).
//
// Definition 1 of the paper: a continuous query q1 is contained by q2
// (q1 ⊑ q2) if for all stream instances S and all application time
// instances τ, q1(S, τ) ⊆ q2(S, τ).
//
// The paper reduces the continuous case to the traditional one:
//
//	Theorem 1 (SPJ): Q1 ⊑ Q2 if (1) Q1∞ ⊑ Q2∞ — containment ignoring
//	windows — and (2) T_i(Q1) ≤ T_i(Q2) for every input stream i.
//
//	Theorem 2 (aggregates): Q1 ⊑ Q2 if (1) Q1∞ ⊑ Q2∞ and (2) the window
//	sizes are equal stream-wise.
//
// For the Q∞ part this package implements the classical sufficient test
// for the CQL subset COSMOS accepts: both queries must involve the same
// streams with the same join predicates (which the grouping optimiser
// already requires), q2's selection predicates must be implied by q1's,
// and q2's projection must retain every attribute q1 outputs. The test is
// sound but not complete — exactly the trade the paper makes by merging
// only within groups that share FROM clauses and aggregation structure.
package containment

import (
	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/window"
)

// Result explains a containment decision; useful for optimizer tracing
// and tests.
type Result struct {
	Contained bool
	Reason    string
}

// Contains reports whether q1 ⊑ q2 using the sufficient conditions of
// Theorems 1 and 2.
func Contains(q1, q2 *cql.Bound) bool {
	return Explain(q1, q2).Contained
}

// Explain is Contains with a human-readable reason for the decision.
func Explain(q1, q2 *cql.Bound) Result {
	// Same query shape: streams, joins, aggregation structure.
	if q1.GroupSignature() != q2.GroupSignature() {
		return Result{false, "different streams, join predicates or aggregation structure"}
	}
	if r := containsInfinity(q1, q2); !r.Contained {
		return r
	}
	// Window conditions.
	if q1.IsAggregate() {
		// Theorem 2(2): equal windows stream-wise.
		for alias, w1 := range q1.Windows {
			if w2, ok := q2.Windows[alias]; !ok || w1 != w2 {
				return Result{false, "aggregate windows differ on " + alias}
			}
		}
	} else {
		// Theorem 1(2): q2's windows must dominate q1's.
		for alias, w1 := range q1.Windows {
			w2, ok := q2.Windows[alias]
			if !ok || !window.Covers(w2, w1) {
				return Result{false, "window on " + alias + " not covered"}
			}
		}
	}
	return Result{true, "Theorem 1/2 conditions hold"}
}

// containsInfinity checks Q1∞ ⊑ Q2∞: containment with every window set to
// infinity, per the reduction in both theorems.
//
// For aggregate queries the predicate condition is strengthened from
// implication to equivalence: an aggregate evaluated over a strict subset
// of the input produces different VALUES, not a subset of rows, so
// implication alone would be unsound. (SPJ queries keep the classical
// implication condition.)
func containsInfinity(q1, q2 *cql.Bound) Result {
	agg := q1.IsAggregate()
	holds := func(a, b predicate.DNF) bool {
		if agg {
			return predicate.ImpliesDNF(a, b) && predicate.ImpliesDNF(b, a)
		}
		return predicate.ImpliesDNF(a, b)
	}
	// Selections: q1's per-stream filters must imply q2's.
	for alias, sel1 := range q1.Sel {
		sel2, ok := q2.Sel[alias]
		if !ok {
			sel2 = predicate.True()
		}
		if !holds(sel1, sel2) {
			return Result{false, "selection on " + alias + " not implied"}
		}
	}
	// Residual (post-join) predicates likewise.
	res1, res2 := q1.Residual, q2.Residual
	if len(res1) == 0 {
		res1 = predicate.True()
	}
	if len(res2) == 0 {
		res2 = predicate.True()
	}
	if !holds(res1, res2) {
		return Result{false, "residual predicate not implied"}
	}
	// Cross-check: q2 must not filter rows via pushed selections on
	// streams q1 leaves unconstrained — covered above because q1.Sel is
	// total over aliases (Analyze guarantees it).

	// Projection: every output attribute of q1 must be available in q2's
	// output. For aggregates the signature check already pinned the
	// aggregate list; here we compare the grouped/plain columns.
	if !projectionCovered(q1, q2) {
		return Result{false, "projection not covered"}
	}
	return Result{true, ""}
}

// projectionCovered reports whether q2 outputs every source column q1
// outputs.
func projectionCovered(q1, q2 *cql.Bound) bool {
	have := map[string]bool{}
	for _, c := range q2.SelectCols {
		have[c.String()] = true
	}
	for _, c := range q1.SelectCols {
		if !have[c.String()] {
			return false
		}
	}
	return true
}

// Equivalent reports mutual containment under the sufficient test.
func Equivalent(q1, q2 *cql.Bound) bool {
	return Contains(q1, q2) && Contains(q2, q1)
}
