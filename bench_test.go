// Benchmarks regenerating the paper's evaluation (one per figure) plus
// ablations for the design choices DESIGN.md calls out, and
// micro-benchmarks of the hot paths.
//
// The figure benches attach the measured experiment metrics to the
// benchmark output via ReportMetric, so `go test -bench=Figure` prints
// the numbers behind Figures 3 and 4; `go run ./cmd/figures` prints the
// full series in the paper's layout.
package cosmos_test

import (
	"fmt"
	"testing"

	"cosmos/internal/cbn"
	"cosmos/internal/cost"
	"cosmos/internal/cql"
	"cosmos/internal/dht"
	"cosmos/internal/exec"
	"cosmos/internal/merge"
	"cosmos/internal/overlay"
	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/sim"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

// benchQueries is the per-iteration query count for the Figure 4
// benches: the first checkpoint of the paper's sweep. The full
// 2000…10000 series is produced by cmd/figures.
const benchQueries = 2000

// BenchmarkFigure4aBenefitRatio regenerates Figure 4(a)'s first
// checkpoint for every workload distribution; the benefit ratio is
// attached as a custom metric.
func BenchmarkFigure4aBenefitRatio(b *testing.B) {
	for _, dist := range querygen.PaperDistributions() {
		b.Run(dist.Name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				results, err := sim.Sweep(sim.Config{
					Dist: dist,
					Seed: int64(i + 1),
				}, []int{benchQueries})
				if err != nil {
					b.Fatal(err)
				}
				last = results[0].BenefitRatio
			}
			b.ReportMetric(last, "benefit-ratio")
		})
	}
}

// BenchmarkFigure4bGroupingRatio regenerates Figure 4(b)'s first
// checkpoint per distribution.
func BenchmarkFigure4bGroupingRatio(b *testing.B) {
	for _, dist := range querygen.PaperDistributions() {
		b.Run(dist.Name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				results, err := sim.Sweep(sim.Config{
					Dist: dist,
					Seed: int64(i + 1),
				}, []int{benchQueries})
				if err != nil {
					b.Fatal(err)
				}
				last = results[0].GroupingRatio
			}
			b.ReportMetric(last, "grouping-ratio")
		})
	}
}

// BenchmarkFigure3ShareVsNonShare runs the Figure 3 scenario end to end
// (real SPE + CBN, both strategies) and reports the byte saving on the
// shared link.
func BenchmarkFigure3ShareVsNonShare(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFigure3(300, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range res.Links {
			if l.Name == "n1-n2" {
				saving = 1 - float64(l.ShareBytes)/float64(l.NonShareBytes)
			}
		}
	}
	b.ReportMetric(100*saving, "shared-link-saving-%")
}

// BenchmarkAblationMergeMode compares ExactUnion against ConvexHull
// representative composition (DESIGN.md ablation): hull keeps filters
// tiny but loosens them, trading benefit for optimizer speed.
func BenchmarkAblationMergeMode(b *testing.B) {
	for _, mode := range []merge.Mode{merge.ExactUnion, merge.ConvexHull} {
		b.Run(mode.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				results, err := sim.Sweep(sim.Config{
					Dist: querygen.Zipf15,
					Seed: int64(i + 1),
					Mode: mode,
				}, []int{benchQueries})
				if err != nil {
					b.Fatal(err)
				}
				last = results[0].BenefitRatio
			}
			b.ReportMetric(last, "benefit-ratio")
		})
	}
}

// BenchmarkAblationProjection measures the data layer's early-projection
// saving (the paper's extension of CBN, §3.1): identical filters, with
// and without a projection set, over a 3-hop path.
func BenchmarkAblationProjection(b *testing.B) {
	run := func(b *testing.B, attrs []string) int64 {
		net := cbn.NewSimNet(4)
		for i := 0; i < 3; i++ {
			net.AddLink(i, i+1, 10)
		}
		schema := sensordata.Schema(0)
		src := net.AttachClient(0)
		sub := net.AttachClient(3)
		sub.OnTuple = func(stream.Tuple) {}
		src.Advertise(schema.Stream)
		p := profile.New()
		p.AddStream(schema.Stream, attrs, nil)
		sub.Subscribe(p)
		gen := sensordata.NewGenerator(0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Publish(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
		return net.TotalDataBytes()
	}
	var full, projected int64
	b.Run("full-tuples", func(b *testing.B) {
		full = run(b, nil)
		b.ReportMetric(float64(full)/float64(b.N), "bytes/tuple")
	})
	b.Run("projected", func(b *testing.B) {
		projected = run(b, []string{"station", "temperature"})
		b.ReportMetric(float64(projected)/float64(b.N), "bytes/tuple")
	})
}

// BenchmarkAblationReorg quantifies the overlay optimizer (§3.2): cost
// of a naive star dissemination tree vs the locally reorganised tree.
func BenchmarkAblationReorg(b *testing.B) {
	g, err := topology.GeneratePowerLaw(200, 2, 11)
	if err != nil {
		b.Fatal(err)
	}
	delays := overlay.AllPairsDelays(g)
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = float64(10 + i%90)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := overlay.Star(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		before := tree.TotalCost(overlay.DelayBpsCost, rates, 8, 1e6)
		reorg := overlay.NewReorganizer(tree, overlay.ReorgOptions{
			DelayFn:       func(a, b int) float64 { return delays[a][b] },
			MaxDegree:     8,
			DegreePenalty: 1e6,
			MaxRounds:     50,
		})
		reorg.Run(rates)
		after := tree.TotalCost(overlay.DelayBpsCost, rates, 8, 1e6)
		ratio = after / before
	}
	b.ReportMetric(ratio, "cost-ratio")
}

// BenchmarkAblationTreeStructure compares dissemination-tree shapes
// under the shared-content cost (one stream multicast to every node —
// the paper's dissemination scenario): the paper's MST choice vs. the
// shortest-path tree (what unicast systems induce) vs. a star. Reported
// metric is cost relative to the MST, which is provably minimal here.
func BenchmarkAblationTreeStructure(b *testing.B) {
	g, err := topology.GeneratePowerLaw(500, 2, 17)
	if err != nil {
		b.Fatal(err)
	}
	subscribers := make([]bool, g.NumNodes())
	for i := range subscribers {
		subscribers[i] = true
	}
	mst, err := overlay.MST(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	base := mst.SharedCost(1000, subscribers)
	build := map[string]func() (*overlay.Tree, error){
		"mst":  func() (*overlay.Tree, error) { return overlay.MST(g, 0) },
		"spt":  func() (*overlay.Tree, error) { return overlay.SPT(g, 0) },
		"star": func() (*overlay.Tree, error) { return overlay.Star(g, 0) },
	}
	for _, name := range []string{"mst", "spt", "star"} {
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				tree, err := build[name]()
				if err != nil {
					b.Fatal(err)
				}
				ratio = tree.SharedCost(1000, subscribers) / base
			}
			b.ReportMetric(ratio, "cost-vs-mst")
		})
	}
}

// BenchmarkAblationSchemaLookup compares schema resolution through the
// DHT (hops per lookup) against local flooding (map lookup) — the §3
// design fork for large stream catalogues.
func BenchmarkAblationSchemaLookup(b *testing.B) {
	info := sensordata.Info(0)
	b.Run("dht-1024-nodes", func(b *testing.B) {
		ring := dht.New()
		for i := 0; i < 1024; i++ {
			if _, err := ring.Join(fmt.Sprintf("node-%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := ring.Store("node-0", "Sensor00", info); err != nil {
			b.Fatal(err)
		}
		totalHops := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, hops, err := ring.Get(fmt.Sprintf("node-%d", i%1024), "Sensor00")
			if err != nil {
				b.Fatal(err)
			}
			totalHops += hops
		}
		b.ReportMetric(float64(totalHops)/float64(b.N), "hops/lookup")
	})
	b.Run("flooded-registry", func(b *testing.B) {
		reg := stream.NewRegistry()
		if err := sensordata.RegisterAll(reg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := reg.Lookup("Sensor00"); !ok {
				b.Fatal("missing")
			}
		}
	})
}

// BenchmarkAblationMaxCandidates sweeps the optimiser's candidate-scan
// bound: the knob trading insertion time against merging quality at
// scale. Benefit ratio is reported alongside the insertion throughput.
func BenchmarkAblationMaxCandidates(b *testing.B) {
	for _, mc := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("cap-%d", mc), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				results, err := sim.Sweep(sim.Config{
					Dist:          querygen.Zipf15,
					Seed:          int64(i + 1),
					MaxCandidates: mc,
				}, []int{benchQueries})
				if err != nil {
					b.Fatal(err)
				}
				last = results[0].BenefitRatio
			}
			b.ReportMetric(last, "benefit-ratio")
		})
	}
}

// --- Micro-benchmarks of the hot paths ---

func sensorCatalog(b *testing.B) *stream.Registry {
	b.Helper()
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		b.Fatal(err)
	}
	return reg
}

// BenchmarkPredicateEval measures one conjunctive filter evaluation —
// the per-datagram cost of CBN routing.
func BenchmarkPredicateEval(b *testing.B) {
	cj := predicate.Conj{
		predicate.C("temperature", predicate.GE, stream.Float(10)),
		predicate.C("temperature", predicate.LE, stream.Float(30)),
		predicate.C("station", predicate.EQ, stream.Int(7)),
	}
	t := sensordata.NewGenerator(7, 1).Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cj.Eval(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrokerRoute measures a broker routing one datagram across 8
// interfaces with distinct subscriptions.
func BenchmarkBrokerRoute(b *testing.B) {
	broker := cbn.NewBroker(0)
	broker.AttachIface(0)
	for i := 1; i <= 8; i++ {
		broker.AttachIface(cbn.IfaceID(i))
		p := profile.New()
		p.AddStream("Sensor07", []string{"station", "temperature"}, predicate.DNF{
			{predicate.C("temperature", predicate.GT, stream.Float(float64(i*5)))},
		})
		broker.HandleSubscribe(p, cbn.IfaceID(i))
	}
	gen := sensordata.NewGenerator(7, 1)
	tuples := gen.Take(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broker.RouteTuple(tuples[i%len(tuples)], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrokerRouteFanout measures the compiled data plane under high
// fan-out: one broker, 32 subscribed interfaces of mixed selectivity
// (tight bands, wide bands, equality filters, unfiltered). The no-match
// variant routes a tuple no subscription covers — the pure per-tuple
// filtering cost, which must be allocation free.
func BenchmarkBrokerRouteFanout(b *testing.B) {
	build := func() *cbn.Broker {
		broker := cbn.NewBroker(0)
		broker.AttachIface(0)
		for i := 1; i <= 32; i++ {
			broker.AttachIface(cbn.IfaceID(i))
			p := profile.New()
			switch i % 4 {
			case 0: // unfiltered, projected
				p.AddStream("Sensor07", []string{"station", "temperature"}, nil)
			case 1: // tight band
				lo := float64(i)
				p.AddStream("Sensor07", []string{"temperature"}, predicate.DNF{{
					predicate.C("temperature", predicate.GE, stream.Float(lo)),
					predicate.C("temperature", predicate.LE, stream.Float(lo+2)),
				}})
			case 2: // wide band
				p.AddStream("Sensor07", nil, predicate.DNF{
					{predicate.C("temperature", predicate.GT, stream.Float(float64(i-20)))},
				})
			default: // equality on a different attribute
				p.AddStream("Sensor07", []string{"station", "humidity"}, predicate.DNF{
					{predicate.C("station", predicate.EQ, stream.Int(int64(i%3*7)))},
				})
			}
			broker.HandleSubscribe(p, cbn.IfaceID(i))
		}
		return broker
	}
	b.Run("mixed", func(b *testing.B) {
		broker := build()
		tuples := sensordata.NewGenerator(7, 1).Take(1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := broker.RouteTuple(tuples[i%len(tuples)], 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-match", func(b *testing.B) {
		broker := cbn.NewBroker(0)
		broker.AttachIface(0)
		for i := 1; i <= 32; i++ {
			broker.AttachIface(cbn.IfaceID(i))
			p := profile.New()
			p.AddStream("Sensor07", []string{"station"}, predicate.DNF{
				{predicate.C("station", predicate.EQ, stream.Int(int64(100+i)))},
			})
			broker.HandleSubscribe(p, cbn.IfaceID(i))
		}
		tp := sensordata.NewGenerator(7, 1).Next() // station=7 matches nothing
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := broker.RouteTuple(tp, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != 0 {
				b.Fatal("tuple unexpectedly matched")
			}
		}
	})
}

// BenchmarkCompiledPredicateEval measures one compiled filter evaluation
// against the interpreted BenchmarkPredicateEval baseline: the same
// three-constraint conjunction with attribute references pre-resolved to
// column indices.
func BenchmarkCompiledPredicateEval(b *testing.B) {
	d := predicate.DNF{{
		predicate.C("temperature", predicate.GE, stream.Float(10)),
		predicate.C("temperature", predicate.LE, stream.Float(30)),
		predicate.C("station", predicate.EQ, stream.Int(7)),
	}}
	t := sensordata.NewGenerator(7, 1).Next()
	c, err := predicate.Compile(d, t.Schema)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EvalValues(t.Values, t.Ts)
	}
}

// BenchmarkPlanJoinPush measures the window join push path with a
// realistic in-window population.
func BenchmarkPlanJoinPush(b *testing.B) {
	reg := stream.NewRegistry()
	open := &stream.Info{Schema: stream.MustSchema("OpenAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 50}
	closed := &stream.Info{Schema: stream.MustSchema("ClosedAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 30}
	reg.Register(open)
	reg.Register(closed)
	bound, err := cql.AnalyzeString(
		"SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", reg)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := spe.Compile("bench", bound, "res")
	if err != nil {
		b.Fatal(err)
	}
	// Pre-populate a 1-hour window with ~360 opens (one per 10s).
	for i := 0; i < 360; i++ {
		ts := stream.Timestamp(i * 10000)
		plan.Push(stream.MustTuple(open.Schema, ts, stream.Int(int64(i)), stream.Time(ts)))
	}
	base := stream.Timestamp(3600 * 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := base + stream.Timestamp(i%1000)
		t := stream.MustTuple(closed.Schema, ts, stream.Int(int64(i%360)), stream.Time(ts))
		if _, err := plan.Push(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSelectPush measures the single-stream select-project push
// path: per-tuple selection plus projection into the result schema.
func BenchmarkPlanSelectPush(b *testing.B) {
	reg := sensorCatalog(b)
	bound, err := cql.AnalyzeString(
		"SELECT station, temperature FROM Sensor07 [Now] WHERE temperature >= -100 AND humidity <= 200", reg)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := spe.Compile("bench", bound, "res")
	if err != nil {
		b.Fatal(err)
	}
	tuples := sensordata.NewGenerator(7, 1).Take(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Push(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanAggPush measures the grouped windowed aggregation push
// path with a realistic in-window population (~120 tuples per group,
// 8 groups): per-tuple grouping plus aggregate evaluation.
func BenchmarkPlanAggPush(b *testing.B) {
	reg := stream.NewRegistry()
	sensor := &stream.Info{Schema: stream.MustSchema("Sensor",
		stream.Field{Name: "station", Kind: stream.KindInt},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	), Rate: 10}
	reg.Register(sensor)
	bound, err := cql.AnalyzeString(
		"SELECT station, COUNT(*), AVG(temp), MAX(temp) FROM Sensor [Range 1 Hour] GROUP BY station", reg)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := spe.Compile("bench", bound, "res")
	if err != nil {
		b.Fatal(err)
	}
	// Pre-populate the 1-hour window: 8 stations, one reading per
	// station per 30s → ~120 live tuples per group.
	for i := 0; i < 960; i++ {
		ts := stream.Timestamp(i * 3750)
		t := stream.MustTuple(sensor.Schema, ts,
			stream.Int(int64(i%8)), stream.Float(float64(i%50)))
		if _, err := plan.Push(t); err != nil {
			b.Fatal(err)
		}
	}
	base := stream.Timestamp(3600 * 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := base + stream.Timestamp(i)*3750
		t := stream.MustTuple(sensor.Schema, ts,
			stream.Int(int64(i%8)), stream.Float(float64(i%50)))
		if _, err := plan.Push(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFanout measures multi-plan fan-out throughput — 8
// plans consuming one stream — across the execution strategies: the
// sequential spe.Engine, the runtime in synchronous mode, and the
// sharded worker pool, at ingest batch sizes 1, 16 and 64. One op is
// one tuple through all 8 plans. The no-match variants route a tuple of
// a stream no plan consumes: the pure dispatch cost, which must be
// allocation-free now that the per-stream plan lists are precomputed at
// Install/Remove time.
func BenchmarkEngineFanout(b *testing.B) {
	reg := sensorCatalog(b)
	const nPlans = 8
	bounds := make([]*cql.Bound, nPlans)
	for i := range bounds {
		text := fmt.Sprintf(
			"SELECT station, temperature, humidity FROM Sensor07 [Now] WHERE temperature >= %d AND humidity <= %d",
			-20+i*5, 95-i*3)
		bd, err := cql.AnalyzeString(text, reg)
		if err != nil {
			b.Fatal(err)
		}
		bounds[i] = bd
	}
	tuples := sensordata.NewGenerator(7, 1).Take(4096)
	chunk := func(size int) [][]stream.Tuple {
		var out [][]stream.Tuple
		for i := 0; i < len(tuples); i += size {
			j := i + size
			if j > len(tuples) {
				j = len(tuples)
			}
			out = append(out, tuples[i:j])
		}
		return out
	}
	installRT := func(b *testing.B, workers int) *exec.Runtime {
		b.Helper()
		rt := exec.New(exec.Config{Workers: workers})
		for i, bd := range bounds {
			if _, err := rt.Install(fmt.Sprintf("p%d", i), bd, fmt.Sprintf("r%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		return rt
	}

	b.Run("sequential", func(b *testing.B) {
		eng := spe.NewEngine(nil)
		for i, bd := range bounds {
			if _, err := eng.Install(fmt.Sprintf("p%d", i), bd, fmt.Sprintf("r%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Consume(tuples[i%len(tuples)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{0, 2, 4} {
		name := "sync"
		if workers > 0 {
			name = fmt.Sprintf("workers%d", workers)
		}
		for _, batch := range []int{1, 16, 64} {
			batches := chunk(batch)
			b.Run(fmt.Sprintf("%s-batch%d", name, batch), func(b *testing.B) {
				rt := installRT(b, workers)
				defer rt.Close()
				b.ReportAllocs()
				b.ResetTimer()
				if batch == 1 {
					for i := 0; i < b.N; i++ {
						if err := rt.Consume(tuples[i%len(tuples)]); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for done, i := 0, 0; done < b.N; done, i = done+len(batches[i%len(batches)]), i+1 {
						if err := rt.ConsumeBatch(batches[i%len(batches)]); err != nil {
							b.Fatal(err)
						}
					}
				}
				rt.Barrier()
			})
		}
	}
	noMatch := sensordata.NewGenerator(1, 1).Next() // Sensor01: no plans
	b.Run("no-match-engine", func(b *testing.B) {
		eng := spe.NewEngine(nil)
		for i, bd := range bounds {
			if _, err := eng.Install(fmt.Sprintf("p%d", i), bd, fmt.Sprintf("r%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Consume(noMatch); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{0, 4} {
		b.Run(fmt.Sprintf("no-match-runtime-workers%d", workers), func(b *testing.B) {
			rt := installRT(b, workers)
			defer rt.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Consume(noMatch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizerAdd measures one greedy insertion into a populated
// optimiser — the query-management cost per arriving query.
func BenchmarkOptimizerAdd(b *testing.B) {
	reg := sensorCatalog(b)
	gen, err := querygen.New(querygen.Config{Dist: querygen.Zipf15, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	bound, err := gen.BindBatch(b.N+1000, reg)
	if err != nil {
		b.Fatal(err)
	}
	opt := merge.NewOptimizer(merge.Options{MaxCandidates: 64})
	for i := 0; i < 1000; i++ {
		if _, err := opt.Add(fmt.Sprintf("warm%d", i), bound[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Add(fmt.Sprintf("q%d", i), bound[1000+i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutputRate measures the cost estimator, which runs once per
// candidate group per insertion.
func BenchmarkOutputRate(b *testing.B) {
	reg := sensorCatalog(b)
	bound, err := cql.AnalyzeString(
		"SELECT station, temperature FROM Sensor07 [Range 1 Hour] WHERE temperature >= 10 AND temperature <= 30", reg)
	if err != nil {
		b.Fatal(err)
	}
	var est cost.Estimator
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.OutputRate(bound)
	}
}

// BenchmarkCQLAnalyze measures parse+bind of a typical query.
func BenchmarkCQLAnalyze(b *testing.B) {
	reg := sensorCatalog(b)
	text := "SELECT station, temperature FROM Sensor07 [Range 30 Minute] WHERE temperature >= 10 AND temperature <= 30"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cql.AnalyzeString(text, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContainment measures one merge attempt (the inner loop of the
// greedy optimiser).
func BenchmarkMergeQueries(b *testing.B) {
	reg := sensorCatalog(b)
	q1, err := cql.AnalyzeString(
		"SELECT station FROM Sensor07 [Range 30 Minute] WHERE temperature >= 10 AND temperature <= 20", reg)
	if err != nil {
		b.Fatal(err)
	}
	q2, err := cql.AnalyzeString(
		"SELECT station, humidity FROM Sensor07 [Range 1 Hour] WHERE temperature >= 15 AND temperature <= 30", reg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merge.Queries(q1, q2, merge.ExactUnion); err != nil {
			b.Fatal(err)
		}
	}
}
