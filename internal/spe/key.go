package spe

import (
	"strconv"

	"cosmos/internal/stream"
)

// hashKey is the comparable composite key used by the SPE's hash state:
// per-group aggregate state and equi-join partition buckets. Up to two
// columns stay allocation-free in dedicated fields; longer composites
// spill into a length-prefixed string suffix (string values may contain
// any byte, so a bare separator would let distinct keys collide).
// Column values are canonicalised through stream.Value.Key, so key
// equality agrees with Value.Compare equality (see stream.ValueKey).
type hashKey struct {
	a, b stream.ValueKey
	rest string
}

// with returns the key extended with the i-th column value.
func (k hashKey) with(i int, v stream.Value) hashKey {
	switch i {
	case 0:
		k.a = v.Key()
	case 1:
		k.b = v.Key()
	default:
		s := v.Key().String()
		k.rest += strconv.Itoa(len(s)) + ":" + s
	}
	return k
}
