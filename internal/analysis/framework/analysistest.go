package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Analysistest-style harness: testdata packages carry `// want "regexp"`
// line comments naming the diagnostics the analyzer must produce on
// that line (several per line allowed, matched in any order); every
// diagnostic must be wanted and every want must be hit, so the suites
// double as false-positive regression guards — a clean negative-case
// package is simply one with no want comments that must produce no
// diagnostics.

// wantRe matches one `// want "re" "re" ...` trailer. Expectations use
// double-quoted Go string literals.
var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// RunTest loads the given package dirs (relative to dir, e.g.
// "./testdata/src/a") in one go and checks analyzer a's diagnostics
// against their want comments.
func RunTest(t *testing.T, dir string, a *Analyzer, patterns ...string) {
	t.Helper()
	prog, err := Load(dir, patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	diags, err := RunAnalyzers(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Roots {
		for _, f := range pkg.Syntax {
			wants = append(wants, collectWants(t, prog.Fset, f)...)
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, g := range f.Comments {
		for _, c := range g.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, quoted := range wantArgRe.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// FormatDiagnostic renders one diagnostic the way the driver prints it.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	name := pos.Filename
	if rel := relIfUnder(name); rel != "" {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", name, pos.Line, pos.Column, d.Analyzer, d.Message)
}

// relIfUnder shortens an absolute filename to be cwd-relative when it
// is under the working directory, purely for readable output.
func relIfUnder(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return ""
	}
	if strings.HasPrefix(path, wd+"/") {
		return path[len(wd)+1:]
	}
	return ""
}
