#!/usr/bin/env bash
# lint.sh — run cosmoslint over the whole module and self-test it.
#
# Two phases:
#
#   1. The gate: `cosmoslint ./...` must exit 0. This is the invariant
#      CI enforces — the repo carries no unexplained hot-path, snapshot,
#      lock-guard or error-drop violations.
#
#   2. The smoke test: inject one violation per analyzer into a real
#      data-path package and assert cosmoslint catches each. A linter
#      that silently stopped finding anything would otherwise keep CI
#      green forever; this phase makes analyzer breakage loud.
#
# Usage: scripts/lint.sh [--no-selftest]
set -euo pipefail
cd "$(dirname "$0")/.."

LINT=${LINT_BIN:-/tmp/cosmoslint-ci}
go build -o "$LINT" ./cmd/cosmoslint

echo "== cosmoslint ./..."
"$LINT" ./...
echo "clean"

if [[ "${1:-}" == "--no-selftest" ]]; then
  exit 0
fi

echo "== analyzer self-test (seeded violations must be caught)"
FIXTURE=internal/exec/zz_lint_selftest.go
trap 'rm -f "$FIXTURE"' EXIT

# One violation per analyzer, planted in internal/exec (a data-path
# package, so errdrop is in scope there):
#   hotpath   — an annotated function calling fmt on the hot path
#   atomicsnap — a write through an atomic.Pointer Load snapshot
#   lockguard — a read of a "guarded by mu" field without the lock
#   errdrop   — a dropped error from a fallible call
cat > "$FIXTURE" <<'EOF'
package exec

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

type zzSnap struct{ n int }

type zzGuarded struct {
	mu sync.Mutex
	n  int // guarded by mu
}

var zzPtr atomic.Pointer[zzSnap]

//cosmos:hotpath
func zzHot() string { return fmt.Sprintf("%d", 1) }

func zzSnapWrite() {
	s := zzPtr.Load()
	s.n = 7
}

func zzUnlockedRead(g *zzGuarded) int { return g.n }

func zzDrop() {
	f, _ := os.Open("/dev/null")
	f.Close()
}
EOF

out=$("$LINT" ./internal/exec 2>&1 || true)
rm -f "$FIXTURE"
trap - EXIT

fail=0
for a in hotpath atomicsnap lockguard errdrop; do
  if grep -q "\[$a\]" <<<"$out"; then
    echo "ok: $a caught its seeded violation"
  else
    echo "FAIL: $a missed its seeded violation" >&2
    fail=1
  fi
done
if [[ $fail -ne 0 ]]; then
  echo "--- cosmoslint output was:" >&2
  echo "$out" >&2
  exit 1
fi
echo "self-test passed"
