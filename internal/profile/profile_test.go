package profile

import (
	"strings"
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

var rSchema = stream.MustSchema("R",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
	stream.Field{Name: "C", Kind: stream.KindInt},
)

func rTuple(t *testing.T, ts stream.Timestamp, a, b, c int64) stream.Tuple {
	t.Helper()
	return stream.MustTuple(rSchema, ts, stream.Int(a), stream.Int(b), stream.Int(c))
}

func TestProfileCovers(t *testing.T) {
	p := New()
	p.AddStream("R", []string{"A", "B"}, predicate.DNF{
		{predicate.C("A", predicate.GT, stream.Int(10))},
	})
	ok, err := p.Covers(rTuple(t, 0, 11, 0, 0))
	if err != nil || !ok {
		t.Fatalf("covers = %v, %v", ok, err)
	}
	ok, _ = p.Covers(rTuple(t, 0, 9, 0, 0))
	if ok {
		t.Error("A=9 must not be covered")
	}
	// Unknown stream is never covered.
	other := stream.MustTuple(stream.MustSchema("X", stream.Field{Name: "A", Kind: stream.KindInt}), 0, stream.Int(99))
	if ok, _ := p.Covers(other); ok {
		t.Error("unknown stream covered")
	}
}

func TestProfileCoversNoFilter(t *testing.T) {
	p := New()
	p.AddStream("R", nil, nil)
	if ok, _ := p.Covers(rTuple(t, 0, 0, 0, 0)); !ok {
		t.Error("filterless profile covers everything on the stream")
	}
}

func TestProfileProject(t *testing.T) {
	p := New()
	p.AddStream("R", []string{"A", "C"}, nil)
	out, err := p.Project(rTuple(t, 5, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Arity() != 2 || out.MustGet("A").AsInt() != 1 || out.MustGet("C").AsInt() != 3 {
		t.Errorf("projected = %v", out)
	}
	if out.Ts != 5 {
		t.Error("timestamp must survive projection")
	}
	// No projection set: tuple passes through whole.
	p2 := New()
	p2.AddStream("R", nil, nil)
	out2, err := p2.Project(rTuple(t, 5, 1, 2, 3))
	if err != nil || out2.Schema.Arity() != 3 {
		t.Errorf("pass-through = %v, %v", out2, err)
	}
}

func TestProfileMergeFiltersAndAttrs(t *testing.T) {
	a := New()
	a.AddStream("R", []string{"A"}, predicate.DNF{{predicate.C("A", predicate.GT, stream.Int(10))}})
	b := New()
	b.AddStream("R", []string{"B"}, predicate.DNF{{predicate.C("A", predicate.LT, stream.Int(0))}})
	a.Merge(b)
	attrs := a.AttrsFor("R")
	if strings.Join(attrs, ",") != "A,B" {
		t.Errorf("merged attrs = %v", attrs)
	}
	f := a.FilterFor("R")
	if len(f) != 2 {
		t.Errorf("merged filter = %s", f)
	}
	// Merging a TRUE filter widens to TRUE.
	c := New()
	c.AddStream("R", nil, nil)
	a.Merge(c)
	if !a.FilterFor("R").IsTrue() {
		t.Errorf("TRUE merge = %s", a.FilterFor("R"))
	}
	if a.AttrsFor("R") != nil {
		t.Error("nil (all) attrs must dominate union")
	}
}

func TestProfileMergeNewStream(t *testing.T) {
	a := New()
	a.AddStream("R", []string{"A"}, nil)
	b := New()
	b.AddStream("S2", []string{"X"}, predicate.DNF{{predicate.C("X", predicate.EQ, stream.Int(1))}})
	a.Merge(b)
	if len(a.Streams) != 2 || a.Streams[0] != "R" || a.Streams[1] != "S2" {
		t.Errorf("streams = %v", a.Streams)
	}
	if a.FilterFor("S2").IsTrue() {
		t.Error("new stream filter lost")
	}
}

func TestCoversProfile(t *testing.T) {
	wide := New()
	wide.AddStream("R", nil, predicate.DNF{{predicate.C("A", predicate.GT, stream.Int(0))}})
	narrow := New()
	narrow.AddStream("R", []string{"A"}, predicate.DNF{{predicate.C("A", predicate.GT, stream.Int(10))}})
	if !wide.CoversProfile(narrow) {
		t.Error("wide should cover narrow")
	}
	if narrow.CoversProfile(wide) {
		t.Error("narrow must not cover wide")
	}
	// Projection matters: a profile with fewer attrs cannot cover one
	// needing more.
	narrowAttrs := New()
	narrowAttrs.AddStream("R", []string{"A"}, nil)
	wantsMore := New()
	wantsMore.AddStream("R", []string{"A", "B"}, nil)
	if narrowAttrs.CoversProfile(wantsMore) {
		t.Error("projection superset required for covering")
	}
	if !wantsMore.CoversProfile(narrowAttrs) {
		t.Error("attr superset with TRUE filters should cover")
	}
	// Stream set matters.
	other := New()
	other.AddStream("S2", nil, nil)
	if wide.CoversProfile(other) {
		t.Error("different stream not covered")
	}
}

func TestCoversProfileSemantics(t *testing.T) {
	// If p covers q, every tuple covered by q is covered by p.
	p := New()
	p.AddStream("R", nil, predicate.DNF{{predicate.C("A", predicate.GE, stream.Int(5))}})
	q := New()
	q.AddStream("R", []string{"A"}, predicate.DNF{
		{predicate.C("A", predicate.GE, stream.Int(7)), predicate.C("B", predicate.EQ, stream.Int(1))},
	})
	if !p.CoversProfile(q) {
		t.Fatal("p should cover q")
	}
	for a := int64(0); a < 12; a++ {
		for b := int64(0); b < 3; b++ {
			tp := rTuple(t, 0, a, b, 0)
			qc, _ := q.Covers(tp)
			pc, _ := p.Covers(tp)
			if qc && !pc {
				t.Fatalf("covering violated at A=%d B=%d", a, b)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New()
	p.AddStream("R", []string{"A"}, predicate.DNF{{predicate.C("A", predicate.GT, stream.Int(1))}})
	c := p.Clone()
	c.AddStream("R", []string{"A", "B"}, nil)
	if strings.Join(p.AttrsFor("R"), ",") != "A" {
		t.Error("clone mutation leaked into original")
	}
	if !p.Equal(p.Clone()) {
		t.Error("clone should be Equal to original")
	}
	if p.Equal(c) {
		t.Error("diverged clone should not be Equal")
	}
}

func testCatalog() *stream.Registry {
	r := stream.NewRegistry()
	for _, in := range []*stream.Info{
		{Schema: stream.MustSchema("R",
			stream.Field{Name: "A", Kind: stream.KindInt},
			stream.Field{Name: "B", Kind: stream.KindInt},
		), Rate: 1},
		{Schema: stream.MustSchema("S",
			stream.Field{Name: "B", Kind: stream.KindInt},
			stream.Field{Name: "C", Kind: stream.KindInt},
		), Rate: 1},
	} {
		if err := r.Register(in); err != nil {
			panic(err)
		}
	}
	return r
}

func TestFromQueryPaperExample(t *testing.T) {
	b, err := cql.AnalyzeString("SELECT R.A, S.C FROM R [Now], S [Now] WHERE R.B = S.B AND R.A > 10", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	p := FromQuery(b)
	if strings.Join(p.Streams, ",") != "R,S" {
		t.Errorf("S = %v", p.Streams)
	}
	if strings.Join(p.AttrsFor("R"), ",") != "A,B" {
		t.Errorf("P(R) = %v", p.AttrsFor("R"))
	}
	if strings.Join(p.AttrsFor("S"), ",") != "B,C" {
		t.Errorf("P(S) = %v", p.AttrsFor("S"))
	}
	if got := p.FilterFor("R").String(); got != "(A > 10)" {
		t.Errorf("F(R) = %s", got)
	}
	if !p.FilterFor("S").IsTrue() {
		t.Errorf("F(S) = %s", p.FilterFor("S"))
	}
}

func TestForResult(t *testing.T) {
	p := ForResult("result-42")
	if len(p.Streams) != 1 || p.Streams[0] != "result-42" {
		t.Errorf("streams = %v", p.Streams)
	}
	if p.AttrsFor("result-42") != nil {
		t.Error("result profile has no projection predicate")
	}
	if !p.FilterFor("result-42").IsTrue() {
		t.Error("result profile has no filter")
	}
}

func TestProfileString(t *testing.T) {
	p := New()
	p.AddStream("R", []string{"A"}, predicate.DNF{{predicate.C("A", predicate.GT, stream.Int(1))}})
	s := p.String()
	if !strings.Contains(s, "S={R}") || !strings.Contains(s, "P(R)={A}") || !strings.Contains(s, "A > 1") {
		t.Errorf("String = %s", s)
	}
}
