package transport

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/obs"
	"cosmos/internal/stream"
)

// resultPump is one v2 connection's single writer: every server→client
// message — results, OKs, pushes, pongs — is enqueued here and written
// by one goroutine (Hazelcast Jet's single-writer discipline). That
// goroutine owns the gob encoder, the bufio.Writer, the per-sub codec
// table and the scratch buffers, so the steady-state data path takes
// one short mutex hop (the enqueue) and then runs lock-free: batches
// of consecutive results for one subscription coalesce into a single
// 'D' frame, built in a pooled buffer and flushed on a bufio boundary
// or when the queue drains.
type resultPump struct {
	w      *connWriter   // shared gob encoder (control frames) + conn
	bw     *bufio.Writer // all frame bytes funnel through here
	stripe int           // obs counter stripe: pumps must not share one

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []pumpEntry // guarded by mu
	spare  []pumpEntry // guarded by mu; recycled second buffer; swap keeps enqueue alloc-free
	err    error       // guarded by mu; first write error; the pump is dead after
	closed bool        // guarded by mu
	idle   bool        // guarded by mu; queue empty AND everything flushed — drain's barrier

	// Single-writer state below: touched only by run()'s goroutine.
	subs   map[*subState]*pumpSub
	nextID uint32
}

// pumpSub is the pump's per-subscription encode state.
type pumpSub struct {
	id     uint32
	schema *stream.Schema
	codec  *tupleCodec
}

// pumpEntry is one queued write: either a control Response (resp set)
// or one result tuple (st set).
type pumpEntry struct {
	resp *Response
	st   *subState
	t    stream.Tuple
	seq  uint64
}

// pumpWriter applies the graceful-drain write bound to the bytes the
// bufio.Writer pushes down, mirroring connWriter.send's deadline.
type pumpWriter struct {
	w *connWriter
}

func (pw pumpWriter) Write(b []byte) (int, error) {
	if pw.w.bounded.Load() {
		_ = pw.w.conn.SetWriteDeadline(time.Now().Add(writeBound))
	}
	return pw.w.conn.Write(b)
}

// pumpSeq hands each pump a distinct obs counter stripe.
var pumpSeq atomic.Int64

func newResultPump(w *connWriter) *resultPump {
	p := &resultPump{
		w:      w,
		bw:     bufio.NewWriterSize(pumpWriter{w: w}, 32<<10),
		stripe: int(pumpSeq.Add(1)),
		subs:   map[*subState]*pumpSub{},
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// sendControl enqueues a control Response.
func (p *resultPump) sendControl(r *Response) error {
	return p.enqueue(pumpEntry{resp: r})
}

// sendResult enqueues one result tuple for st.
func (p *resultPump) sendResult(st *subState, t stream.Tuple, seq uint64) error {
	return p.enqueue(pumpEntry{st: st, t: t, seq: seq})
}

func (p *resultPump) enqueue(e pumpEntry) error {
	p.mu.Lock()
	if p.err != nil || p.closed {
		err := p.err
		p.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return err
	}
	p.queue = append(p.queue, e)
	p.cond.Broadcast()
	p.mu.Unlock()
	return nil
}

// drain blocks until everything enqueued so far is on the wire (or the
// pump died). Used by the graceful shutdown after the final MsgEnd
// pushes, before the connection closes.
func (p *resultPump) drain() {
	p.mu.Lock()
	// idle alone is not enough: it can be stale-true from before the
	// pump woke up to take a just-enqueued batch. The queue must also
	// be empty (once the pump swaps a batch out it clears idle before
	// releasing the lock, so empty+idle really means flushed).
	for (len(p.queue) > 0 || !p.idle) && p.err == nil && !p.closed {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// close stops the pump goroutine; entries still queued are dropped
// (their connection is going away — the same fate v1's ignored write
// errors gave them).
func (p *resultPump) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *resultPump) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// run is the single writer. It swaps the queue against a recycled
// spare (no allocation at steady state), writes the batch, and flushes
// only when the queue goes dry — back-to-back deliveries ride the
// bufio boundary instead.
func (p *resultPump) run() {
	dirty := false // bytes sit in bw since the last flush
	for {
		p.mu.Lock()
		for len(p.queue) == 0 {
			if p.closed || p.err != nil {
				p.mu.Unlock()
				return
			}
			if dirty {
				p.mu.Unlock()
				err := p.bw.Flush()
				dirty = false
				if err != nil {
					p.fail(err)
				}
				p.mu.Lock()
				continue // something may have arrived during the flush
			}
			p.idle = true
			p.cond.Broadcast()
			p.cond.Wait()
			p.idle = false
		}
		batch := p.queue
		p.queue = p.spare[:0]
		p.mu.Unlock()
		if p.process(batch) {
			dirty = true
		}
		for i := range batch {
			batch[i] = pumpEntry{} // drop tuple/Response refs before recycling
		}
		p.spare = batch[:0]
	}
}

// process writes one swapped-out batch; reports whether any bytes were
// written. Consecutive results for one subscription with contiguous
// sequences and the same schema coalesce into one 'D' frame.
func (p *resultPump) process(batch []pumpEntry) bool {
	wrote := false
	i := 0
	for i < len(batch) {
		if p.dead() {
			return wrote
		}
		e := &batch[i]
		if e.resp != nil {
			if p.writeControl(e.resp) {
				wrote = true
			}
			i++
			continue
		}
		j := i + 1
		for j < len(batch) && j-i < maxBatchTuples {
			n := &batch[j]
			if n.resp != nil || n.st != e.st || n.t.Schema != e.t.Schema || n.seq != batch[j-1].seq+1 {
				break
			}
			j++
		}
		if p.writeBatch(batch[i:j]) {
			wrote = true
		}
		i = j
	}
	return wrote
}

func (p *resultPump) dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err != nil || p.closed
}

// writeControl emits a 'G' frame: marker + one gob Response through
// the shared encoder (which targets bw after the upgrade).
func (p *resultPump) writeControl(r *Response) bool {
	if err := p.bw.WriteByte(frameGob); err != nil {
		p.fail(err)
		return false
	}
	//lint:ignore lockguard after the v2 upgrade the pump's writer goroutine owns the shared encoder; connWriter.send routes all control frames here instead of touching enc
	if err := p.w.enc.Encode(r); err != nil {
		p.fail(err)
		return false
	}
	return true
}

// writeBatch emits one 'D' frame for run (all same sub, same schema,
// contiguous seqs), preceded by an 'S' frame when the subscription is
// new to this connection or its schema changed. The payload is built
// in a pooled buffer; at steady state the whole path allocates
// nothing.
func (p *resultPump) writeBatch(run []pumpEntry) bool {
	st := run[0].st
	ps := p.subs[st]
	schema := run[0].t.Schema
	wrote := false
	if ps == nil {
		p.nextID++
		ps = &pumpSub{id: p.nextID}
		p.subs[st] = ps
	}
	if ps.schema != schema {
		ps.schema = schema
		ps.codec = newTupleCodec(schema)
		bufp := getFrameBuf()
		*bufp = appendSchemaFrame((*bufp)[:0], ps.id, st.tag, schema)
		ok := p.writeFrame(frameSchema, *bufp)
		putFrameBuf(bufp)
		if !ok {
			return wrote
		}
		wrote = true
	}
	// Build 'D' frames, splitting on the soft byte cap.
	wm := p.w.wire
	bufp := getFrameBuf()
	defer putFrameBuf(bufp)
	for len(run) > 0 {
		buf := appendDataHeader((*bufp)[:0], ps.id, run[0].seq)
		n := 0
		for n < len(run) && (n == 0 || len(buf) < batchSoftBytes) {
			buf = ps.codec.appendTuple(buf, run[n].t)
			n++
		}
		patchDataCount(buf, n)
		*bufp = buf
		// Wire-stage accounting per frame: n results, one batch, the
		// payload bytes; the sampled timing covers the buffered write.
		wm.results.Add(int64(n))
		wm.batches.Add(1)
		wm.bytes.Add(int64(len(buf)))
		start := wm.obs.StageStartNAt(obs.StageWire, int64(n), p.stripe)
		ok := p.writeFrame(frameData, buf)
		wm.obs.StageEnd(obs.StageWire, start)
		if wm.obs.TraceOn() {
			for i := 0; i < n; i++ {
				wm.obs.TraceMark(int64(run[i].t.Ts), obs.StageWire)
			}
		}
		if !ok {
			return wrote
		}
		wrote = true
		run = run[n:]
	}
	return wrote
}

// depth gauges the pump's pending-entry backlog.
func (p *resultPump) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// writeFrame emits marker + u32 length + payload onto bw.
func (p *resultPump) writeFrame(marker byte, payload []byte) bool {
	var hdr [5]byte
	hdr[0] = marker
	hdr[1] = byte(len(payload))
	hdr[2] = byte(len(payload) >> 8)
	hdr[3] = byte(len(payload) >> 16)
	hdr[4] = byte(len(payload) >> 24)
	if _, err := p.bw.Write(hdr[:]); err != nil {
		p.fail(err)
		return false
	}
	if _, err := p.bw.Write(payload); err != nil {
		p.fail(err)
		return false
	}
	return true
}
