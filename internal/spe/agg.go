package spe

import (
	"fmt"

	"cosmos/internal/cql"
	"cosmos/internal/stream"
)

// aggState executes grouped windowed aggregation over a single stream
// under the Istream-per-update model: every surviving input tuple emits
// its group's updated aggregate row evaluated over the live window.
//
// Aggregates are maintained incrementally per group instead of
// rescanning the full window per tuple: COUNT and integer SUM/AVG as
// running counters adjusted on insert and eviction (exact int64 sums
// cannot lose precision), MIN/MAX as a current extremum that is marked
// dirty when an eviction removes it and recomputed from the group's live
// members only then, and float SUM/AVG summed over the group's live
// members at emission (a running float accumulator with subtract-on-
// evict suffers catastrophic cancellation once large values leave the
// window). Groups are keyed by canonical comparable value keys
// (stream.Value.Key) rather than rendered strings. The same state
// machine serves the compiled (column-index) and interpreted
// (attribute-name) access paths, so both plan modes emit identical rows.
type aggState struct {
	bound  *cql.Bound
	schema *stream.Schema
	// groupCols/groupIdx are the bare names and resolved columns of the
	// grouping attributes; plainCols/plainIdx the selected grouping
	// columns in output order.
	groupCols []string
	groupIdx  []int
	plainCols []string
	plainIdx  []int
	specs     []aggSpec
	// trackMembers keeps per-group member lists (MIN/MAX recompute and
	// float SUM/AVG emission).
	trackMembers bool
	groups       map[hashKey]*groupAgg
}

// aggSpec is one aggregate output with its argument pre-resolved.
type aggSpec struct {
	fn    cql.AggFunc
	col   string // bare argument attribute; "" for COUNT(*)
	idx   int    // argument column in the input schema; -1 for COUNT(*)
	exact bool   // non-float argument: exact int64 running sum
}

// aggAcc is one aggregate's running accumulator within a group.
type aggAcc struct {
	sumI  int64        // exact running sum (non-float arguments)
	best  stream.Value // current MIN/MAX
	dirty bool         // an eviction removed best; recompute on demand
}

// groupAgg is the incremental state of one group.
type groupAgg struct {
	count   int64
	accs    []aggAcc
	members []uint64 // live member sequences in arrival order
	mhead   int
}

func newAggState(b *cql.Bound, schema *stream.Schema) (*aggState, error) {
	a := &aggState{bound: b, schema: schema, groups: map[hashKey]*groupAgg{}}
	for _, g := range b.GroupBy {
		idx := schema.ColIndex(g.Name)
		if idx < 0 {
			return nil, fmt.Errorf("spe: input schema lacks grouping attribute %s", g.Name)
		}
		a.groupCols = append(a.groupCols, g.Name)
		a.groupIdx = append(a.groupIdx, idx)
	}
	for _, c := range b.SelectCols {
		idx := schema.ColIndex(c.Name)
		if idx < 0 {
			return nil, fmt.Errorf("spe: input schema lacks selected attribute %s", c.Name)
		}
		a.plainCols = append(a.plainCols, c.Name)
		a.plainIdx = append(a.plainIdx, idx)
	}
	for _, spec := range b.Aggs {
		s := aggSpec{fn: spec.Func, idx: -1}
		switch spec.Func {
		case cql.AggCount, cql.AggSum, cql.AggAvg, cql.AggMin, cql.AggMax:
		default:
			return nil, fmt.Errorf("spe: unsupported aggregate %s", spec.Func)
		}
		if !spec.Star {
			s.col = spec.Arg.Name
			s.idx = schema.ColIndex(s.col)
			if s.idx < 0 {
				return nil, fmt.Errorf("spe: input schema lacks aggregate attribute %s", s.col)
			}
			s.exact = schema.Fields[s.idx].Kind != stream.KindFloat
		}
		switch {
		case spec.Func == cql.AggMin || spec.Func == cql.AggMax:
			a.trackMembers = true
		case !s.exact && (spec.Func == cql.AggSum || spec.Func == cql.AggAvg):
			a.trackMembers = true
		}
		a.specs = append(a.specs, s)
	}
	return a, nil
}

// reset drops all group state (snapshot restore rebuilds it).
func (a *aggState) reset() { a.groups = map[hashKey]*groupAgg{} }

// keyOf builds a tuple's canonical group key.
func (a *aggState) keyOf(t stream.Tuple, useIdx bool) (hashKey, error) {
	var k hashKey
	for i, col := range a.groupCols {
		var v stream.Value
		if useIdx {
			v = t.Values[a.groupIdx[i]]
		} else {
			var ok bool
			v, ok = t.Get(col)
			if !ok {
				return hashKey{}, fmt.Errorf("spe: tuple lacks grouping attribute %s", col)
			}
		}
		k = k.with(i, v)
	}
	return k, nil
}

// argOf resolves one aggregate's argument value.
func (a *aggState) argOf(t stream.Tuple, s *aggSpec, useIdx bool) (stream.Value, error) {
	if useIdx {
		return t.Values[s.idx], nil
	}
	v, ok := t.Get(s.col)
	if !ok {
		return stream.Value{}, fmt.Errorf("spe: tuple lacks aggregate attribute %s", s.col)
	}
	return v, nil
}

// admit registers one surviving input tuple with its group, updating the
// running aggregates. It is also how snapshot restore rebuilds state.
func (a *aggState) admit(t stream.Tuple, seq uint64, useIdx bool) (*groupAgg, error) {
	key, err := a.keyOf(t, useIdx)
	if err != nil {
		return nil, err
	}
	g := a.groups[key]
	if g == nil {
		g = &groupAgg{accs: make([]aggAcc, len(a.specs))}
		a.groups[key] = g
	}
	g.count++
	for si := range a.specs {
		s := &a.specs[si]
		if s.fn == cql.AggCount {
			continue
		}
		v, err := a.argOf(t, s, useIdx)
		if err != nil {
			return nil, err
		}
		acc := &g.accs[si]
		switch s.fn {
		case cql.AggSum, cql.AggAvg:
			if s.exact {
				acc.sumI += v.AsInt()
			}
			// Float sums are computed from the member list at emission.
		default: // MIN/MAX
			if g.count == 1 {
				acc.best, acc.dirty = v, false
			} else if !acc.dirty {
				if c, err := v.Compare(acc.best); err == nil &&
					((s.fn == cql.AggMin && c < 0) || (s.fn == cql.AggMax && c > 0)) {
					acc.best = v
				}
			}
		}
	}
	if a.trackMembers {
		g.members = append(g.members, seq)
	}
	return g, nil
}

// evictMember unwinds one expired tuple from its group's running state;
// the plan's eviction loop calls it exactly once per expired tuple, so
// maintenance is amortised O(1) per push.
func (a *aggState) evictMember(t stream.Tuple, useIdx bool) error {
	key, err := a.keyOf(t, useIdx)
	if err != nil {
		return err
	}
	g := a.groups[key]
	if g == nil {
		return nil // unreachable: every buffered tuple was admitted
	}
	g.count--
	for si := range a.specs {
		s := &a.specs[si]
		if s.fn == cql.AggCount {
			continue
		}
		v, err := a.argOf(t, s, useIdx)
		if err != nil {
			return err
		}
		acc := &g.accs[si]
		switch s.fn {
		case cql.AggSum, cql.AggAvg:
			if s.exact {
				acc.sumI -= v.AsInt()
			}
		default: // MIN/MAX
			if acc.dirty {
				continue
			}
			if c, err := v.Compare(acc.best); err != nil || c == 0 {
				acc.dirty = true
			}
		}
	}
	if a.trackMembers {
		// Members expire in arrival order, so the front is the evictee.
		g.mhead++
		if g.mhead >= compactMinHead && g.mhead*2 >= len(g.members) {
			n := copy(g.members, g.members[g.mhead:])
			g.members = g.members[:n]
			g.mhead = 0
		}
	}
	if g.count <= 0 {
		delete(a.groups, key)
	}
	return nil
}

// update admits the surviving tuple and emits its group's refreshed
// aggregate row. Rows are bound to the bound's placeholder OutSchema;
// the plan rebinds them to its registered result stream schema.
func (a *aggState) update(in *inputState, t stream.Tuple, seq uint64, useIdx bool) ([]stream.Tuple, error) {
	g, err := a.admit(t, seq, useIdx)
	if err != nil {
		return nil, err
	}
	values := make([]stream.Value, 0, len(a.plainCols)+len(a.specs))
	for i, col := range a.plainCols {
		var v stream.Value
		if useIdx {
			v = t.Values[a.plainIdx[i]]
		} else {
			var ok bool
			v, ok = t.Get(col)
			if !ok {
				return nil, fmt.Errorf("spe: tuple lacks selected grouping attribute %s", col)
			}
		}
		values = append(values, v)
	}
	for si := range a.specs {
		v, err := a.result(in, g, si, useIdx)
		if err != nil {
			return nil, err
		}
		values = append(values, v)
	}
	out := stream.Tuple{Schema: a.bound.OutSchema, Ts: t.Ts, Values: values}
	return []stream.Tuple{out}, nil
}

// result reads one aggregate's current value: running counters for
// COUNT and exact sums, the group's live members for float sums, and
// the cached MIN/MAX extremum, recomputed from the live members when an
// eviction dirtied it.
func (a *aggState) result(in *inputState, g *groupAgg, si int, useIdx bool) (stream.Value, error) {
	s := &a.specs[si]
	acc := &g.accs[si]
	switch s.fn {
	case cql.AggCount:
		return stream.Int(g.count), nil
	case cql.AggSum, cql.AggAvg:
		var sum float64
		if s.exact {
			sum = float64(acc.sumI)
		} else {
			// Summed fresh over the live members in arrival order: a
			// running accumulator with subtract-on-evict cancels
			// catastrophically once large values leave the window.
			for _, seq := range g.members[g.mhead:] {
				v, err := a.argOf(in.at(seq), s, useIdx)
				if err != nil {
					return stream.Value{}, err
				}
				sum += v.AsFloat()
			}
		}
		if s.fn == cql.AggAvg {
			sum /= float64(g.count)
		}
		return stream.Float(sum), nil
	default: // MIN/MAX
		if acc.dirty {
			if err := a.recompute(in, g, si, useIdx); err != nil {
				return stream.Value{}, err
			}
		}
		return acc.best, nil
	}
}

// recompute rescans the group's live members (first-wins on ties, like a
// fresh window scan) to refresh a dirtied MIN/MAX extremum.
func (a *aggState) recompute(in *inputState, g *groupAgg, si int, useIdx bool) error {
	s := &a.specs[si]
	acc := &g.accs[si]
	first := true
	for _, seq := range g.members[g.mhead:] {
		v, err := a.argOf(in.at(seq), s, useIdx)
		if err != nil {
			return err
		}
		if first {
			acc.best, first = v, false
			continue
		}
		if c, err := v.Compare(acc.best); err == nil &&
			((s.fn == cql.AggMin && c < 0) || (s.fn == cql.AggMax && c > 0)) {
			acc.best = v
		}
	}
	acc.dirty = first // cleared unless the group had no members
	return nil
}
