package load

import (
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/obs"
)

// Recorder is the delivery-side ledger of a load run: per-subscription
// sequence tracking (loss, duplication, reordering) plus the shared
// end-to-end latency histogram. Latency is measured from each tuple's
// *intended* publish offset (stamped by the pacer), so scheduling
// backlog on the publish side counts against delivery latency — the
// coordinated-omission guard's receiving half.
type Recorder struct {
	start     time.Time
	lat       obs.Histogram
	svc       obs.Histogram
	delivered atomic.Int64

	mu     sync.Mutex
	tracks []*Track // guarded by mu
}

// NewRecorder builds a recorder measuring latency against the given run
// epoch (the pacer's Start).
func NewRecorder(start time.Time) *Recorder {
	return &Recorder{start: start}
}

// Track is one subscription's sequence ledger. Deliveries must arrive
// with strictly increasing sequence numbers advancing by the track's
// stride: a repeat or regression counts as a duplicate, a forward jump
// counts the skipped sequences as lost. By default the first delivery
// is free (a subscription joining mid-stream has no provable first due
// sequence); Expect pins the exact first due sequence for subscriptions
// settled behind a quiesced boundary, making the ledger exact end to
// end.
type Track struct {
	stride int64

	mu        sync.Mutex
	started   bool  // guarded by mu
	hasExpect bool  // guarded by mu
	expect    int64 // guarded by mu
	first     int64 // guarded by mu
	last      int64 // guarded by mu
	received  int64 // guarded by mu
	dups      int64 // guarded by mu
	holes     int64 // guarded by mu
	closed    bool  // guarded by mu
}

// NewTrack registers a subscription ledger expecting sequences to
// advance by stride (1 for a sub that sees every source tuple, 2 for
// e.g. an auction query matching every other close).
func (r *Recorder) NewTrack(stride int64) *Track {
	if stride <= 0 {
		stride = 1
	}
	t := &Track{stride: stride}
	r.mu.Lock()
	r.tracks = append(r.tracks, t)
	r.mu.Unlock()
	return t
}

// Observe records one delivery on a track: seq is the tuple's carried
// sequence number, pubNanos its intended publish offset from the run
// epoch, actNanos the offset at which it was actually published (< 0
// when the scenario cannot carry it). The intended-based measurement is
// the headline (coordinated-omission-safe: publish backlog counts); the
// actual-based one is the service latency of the delivery path alone.
// Safe for concurrent use across tracks and within one track.
func (r *Recorder) Observe(t *Track, seq, pubNanos, actNanos int64) {
	now := int64(time.Since(r.start))
	lat := now - pubNanos
	if lat < 0 {
		lat = 0
	}
	r.lat.Observe(lat)
	if actNanos >= 0 {
		svc := now - actNanos
		if svc < 0 {
			svc = 0
		}
		r.svc.Observe(svc)
	}
	r.delivered.Add(1)
	t.record(seq)
}

func (t *Track) record(seq int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.received++
	if !t.started {
		t.started = true
		t.first = seq
		t.last = seq
		// A declared first due sequence turns a late-starting stream
		// into accounted loss instead of a free pass.
		if t.hasExpect && seq > t.expect {
			t.holes += (seq - t.expect) / t.stride
		}
		return
	}
	switch {
	case seq <= t.last:
		t.dups++
	case seq == t.last+t.stride:
		t.last = seq
	default:
		// Forward jump: every skipped stride slot was lost. A
		// misaligned jump (not a stride multiple) still rounds to at
		// least one loss.
		missed := (seq - t.last) / t.stride
		if missed < 2 {
			missed = 2
		}
		t.holes += missed - 1
		t.last = seq
	}
}

// Expect declares the track's exact first due sequence — for
// subscriptions whose propagation was settled (quiesced) before any
// matching tuple was published. Without it the first delivery is free
// and tail loss is only charged once the track has started.
func (t *Track) Expect(firstSeq int64) *Track {
	t.mu.Lock()
	t.hasExpect = true
	t.expect = firstSeq
	t.mu.Unlock()
	return t
}

// Close marks the track's subscription deliberately cancelled: it is
// exempt from tail-loss accounting (AddTailLoss) from then on.
func (t *Track) Close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
}

// Last returns the highest sequence seen (ok=false before the first
// delivery).
func (t *Track) Last() (seq int64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last, t.started
}

// Received returns the track's delivery count.
func (t *Track) Received() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.received
}

// Closed reports whether the track was cancelled.
func (t *Track) Closed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// AddTailLoss charges a still-open track for the distance between its
// last seen sequence and the stream's final sequence — deliveries that
// were due but never arrived before the drain deadline. A track that
// never started is charged from its declared first due sequence
// (Expect); without a declaration nothing is provably due, so it is
// only charged once it has delivered at least once.
func (t *Track) AddTailLoss(finalSeq int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	from := t.last
	if !t.started {
		if !t.hasExpect {
			return
		}
		from = t.expect - t.stride
	}
	if finalSeq > from {
		t.holes += (finalSeq - from) / t.stride
	}
}

// Settled reports whether the track has seen every sequence due up to
// finalSeq — the drain loop's completion test. Closed tracks are always
// settled; an unstarted track is settled only when nothing was provably
// due (no declared start, or the declared start lies beyond finalSeq).
func (t *Track) Settled(finalSeq int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return true
	}
	if !t.started {
		return !t.hasExpect || finalSeq < t.expect
	}
	return t.last+t.stride > finalSeq
}

// Delivered returns the total deliveries observed across all tracks.
func (r *Recorder) Delivered() int64 { return r.delivered.Load() }

// Totals sums the per-track ledgers: lost sequence slots (in-stream
// holes plus charged tail loss) and duplicated/reordered deliveries.
func (r *Recorder) Totals() (lost, dups int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tracks {
		t.mu.Lock()
		lost += t.holes
		dups += t.dups
		t.mu.Unlock()
	}
	return lost, dups
}

// Tracks snapshots the registered tracks.
func (r *Recorder) Tracks() []*Track {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Track(nil), r.tracks...)
}

// LatencySnapshot returns the end-to-end latency histogram (measured
// from intended publish times).
func (r *Recorder) LatencySnapshot() obs.HistSnapshot { return r.lat.Snapshot() }

// SvcSnapshot returns the service-latency histogram (measured from
// actual publish times); empty when the scenario does not stamp them.
func (r *Recorder) SvcSnapshot() obs.HistSnapshot { return r.svc.Snapshot() }
