package lockguard_test

import (
	"testing"

	"cosmos/internal/analysis/framework"
	"cosmos/internal/analysis/lockguard"
)

// TestLockguard runs the analyzer over the seeded-violation package and
// the correctly-locked package (the false-positive regression guard).
func TestLockguard(t *testing.T) {
	framework.RunTest(t, ".", lockguard.Analyzer,
		"./testdata/src/guard", "./testdata/src/guardneg")
}
