// Package stream defines the data model shared by every COSMOS layer:
// typed values, schemas, tuples and the stream registry.
//
// Streams in COSMOS are modelled as relations that are continuously
// appended (paper §3). Every tuple carries an application timestamp drawn
// from a discrete time domain T; all window semantics and the continuous
// query containment results (paper §4) are expressed against that domain.
package stream

import (
	"fmt"
	"strconv"
)

// Kind enumerates the attribute types supported by the COSMOS data model.
type Kind uint8

// Supported attribute kinds.
const (
	KindInvalid Kind = iota
	KindInt          // 64-bit signed integer
	KindFloat        // 64-bit IEEE float
	KindString       // UTF-8 string
	KindBool         // boolean
	KindTime         // application timestamp, milliseconds
)

// String returns the lower-case name of the kind as used in schema DDL.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return "invalid"
	}
}

// ParseKind converts a schema DDL type name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "bool":
		return KindBool, nil
	case "time", "timestamp":
		return KindTime, nil
	}
	return KindInvalid, fmt.Errorf("stream: unknown type %q", s)
}

// Width returns the wire width in bytes assumed for cost accounting.
// Strings use a declared average length held by the Field, so Width for
// KindString returns the default used when no average is declared.
//
//cosmos:hotpath
func (k Kind) Width() int {
	switch k {
	case KindInt, KindFloat, KindTime:
		return 8
	case KindBool:
		return 1
	case KindString:
		return DefaultStringWidth
	default:
		return 0
	}
}

// DefaultStringWidth is the assumed average string attribute width in bytes
// when a schema does not declare one.
const DefaultStringWidth = 16

// Timestamp is an application timestamp in milliseconds from the discrete
// application time domain T of the paper.
type Timestamp int64

// Duration is a window length in milliseconds. The sentinel values Now and
// Unbounded encode the CQL windows [Now] and [Unbounded].
type Duration int64

// Window duration sentinels.
const (
	// Now is the CQL [Now] window: only tuples with the current timestamp.
	Now Duration = 0
	// Unbounded is the CQL [Unbounded] window (T = ∞ in the paper).
	Unbounded Duration = 1<<63 - 1
)

// Common duration units, in milliseconds.
const (
	Millisecond Duration = 1
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
)

// String renders the duration using the largest exact unit, matching the
// CQL surface syntax ("3 Hour", "30 Minute", "Now", "Unbounded").
func (d Duration) String() string {
	switch {
	case d == Unbounded:
		return "Unbounded"
	case d == Now:
		return "Now"
	case d%Day == 0:
		return fmt.Sprintf("%d Day", int64(d/Day))
	case d%Hour == 0:
		return fmt.Sprintf("%d Hour", int64(d/Hour))
	case d%Minute == 0:
		return fmt.Sprintf("%d Minute", int64(d/Minute))
	case d%Second == 0:
		return fmt.Sprintf("%d Second", int64(d/Second))
	default:
		return fmt.Sprintf("%d Millisecond", int64(d))
	}
}

// Value is a dynamically typed attribute value. The zero Value is invalid.
// Value is a small immutable struct and is passed by value throughout.
type Value struct {
	kind Kind
	n    int64   // KindInt, KindBool (0/1), KindTime
	f    float64 // KindFloat
	s    string  // KindString
}

// Int returns an integer Value.
//
//cosmos:hotpath
func Int(v int64) Value { return Value{kind: KindInt, n: v} }

// Float returns a float Value.
//
//cosmos:hotpath
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string Value. (Named with a trailing underscore to
// avoid colliding with the fmt.Stringer method on Value.)
//
//cosmos:hotpath
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean Value.
//
//cosmos:hotpath
func Bool(v bool) Value {
	n := int64(0)
	if v {
		n = 1
	}
	return Value{kind: KindBool, n: n}
}

// Time returns a timestamp Value.
//
//cosmos:hotpath
func Time(ts Timestamp) Value { return Value{kind: KindTime, n: int64(ts)} }

// Kind reports the kind of the value.
//
//cosmos:hotpath
func (v Value) Kind() Kind { return v.kind }

// Valid reports whether the value holds data of a known kind.
//
//cosmos:hotpath
func (v Value) Valid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload; valid for KindInt and KindTime.
//
//cosmos:hotpath
func (v Value) AsInt() int64 { return v.n }

// AsFloat returns the value coerced to float64 (ints and times widen).
//
//cosmos:hotpath
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindTime, KindBool:
		return float64(v.n)
	default:
		return 0
	}
}

// AsString returns the string payload for KindString values.
//
//cosmos:hotpath
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload for KindBool values.
//
//cosmos:hotpath
func (v Value) AsBool() bool { return v.n != 0 }

// AsTime returns the timestamp payload for KindTime values.
//
//cosmos:hotpath
func (v Value) AsTime() Timestamp { return Timestamp(v.n) }

// Numeric reports whether the value can participate in arithmetic
// comparisons with other numeric values.
//
//cosmos:hotpath
func (v Value) Numeric() bool {
	return v.kind == KindInt || v.kind == KindFloat || v.kind == KindTime
}

// Compare orders two values. It returns a negative number if v < w, zero if
// equal, positive if v > w, and an error for incomparable kinds. Numeric
// kinds (int, float, time) compare with each other; strings compare with
// strings; bools compare with bools (false < true).
//
//cosmos:hotpath-ok — error branches fire only on kind mismatch, which compiled callers rule out at compile time
func (v Value) Compare(w Value) (int, error) {
	if v.Numeric() && w.Numeric() {
		a, b := v.AsFloat(), w.AsFloat()
		// Exact path when both are integral to avoid float rounding.
		if v.kind != KindFloat && w.kind != KindFloat {
			switch {
			case v.n < w.n:
				return -1, nil
			case v.n > w.n:
				return 1, nil
			default:
				return 0, nil
			}
		}
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind == KindString && w.kind == KindString {
		switch {
		case v.s < w.s:
			return -1, nil
		case v.s > w.s:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind == KindBool && w.kind == KindBool {
		switch {
		case v.n < w.n:
			return -1, nil
		case v.n > w.n:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("stream: cannot compare %s with %s", v.kind, w.kind)
}

// Equal reports whether two values are equal under Compare semantics.
// Incomparable values are never equal.
//
//cosmos:hotpath
func (v Value) Equal(w Value) bool {
	c, err := v.Compare(w)
	return err == nil && c == 0
}

// Sub returns v − w for numeric values, used by timestamp-difference
// filter terms (paper §4, result-splitting profiles p1/p2).
//
//cosmos:hotpath-ok — error branches fire only on kind mismatch, which compiled callers rule out at compile time
func (v Value) Sub(w Value) (Value, error) {
	if !v.Numeric() || !w.Numeric() {
		return Value{}, fmt.Errorf("stream: cannot subtract %s from %s", w.kind, v.kind)
	}
	if v.kind != KindFloat && w.kind != KindFloat {
		return Int(v.n - w.n), nil
	}
	return Float(v.AsFloat() - w.AsFloat()), nil
}

// WireSize returns the assumed size of this value on the wire in bytes,
// used by the communication cost model.
//
//cosmos:hotpath
func (v Value) WireSize() int {
	if v.kind == KindString {
		if len(v.s) == 0 {
			return 1
		}
		return len(v.s)
	}
	return v.kind.Width()
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.n != 0)
	case KindTime:
		return "@" + strconv.FormatInt(v.n, 10)
	default:
		return "<invalid>"
	}
}
