// Command cosmoslint runs the repo's custom static analyses — the
// machine-checked versions of the invariants ARCHITECTURE.md prescribes
// (hot-path allocation discipline, atomic-snapshot immutability,
// guarded-by locking, no silent error drops).
//
// Usage:
//
//	cosmoslint [-list] [-json] [-all-errdrop] [packages ...]
//
// Patterns default to ./... relative to the current directory. Exit
// status is 1 when any diagnostic survives suppression, 0 otherwise.
//
// The binary also speaks the `go vet -vettool` protocol (-V=full and
// single-argument *.cfg invocations), so CI and editors can run it as
//
//	go vet -vettool=$(which cosmoslint) ./...
//
// In vettool mode each unit re-analyzes the whole module so that
// cross-package annotations resolve; it is correct but slower than
// invoking cosmoslint directly, which loads the program once.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"cosmos/internal/analysis"
	"cosmos/internal/analysis/errdrop"
	"cosmos/internal/analysis/framework"
)

// dataPathPackages scope the errdrop check: packages where a dropped
// error means a lost tuple or a wedged session rather than a cosmetic
// slip. The other analyzers are annotation- or comment-driven and
// self-scope.
var dataPathPackages = []string{
	"cosmos/internal/cbn",
	"cosmos/internal/core",
	"cosmos/internal/exec",
	"cosmos/internal/obs",
	"cosmos/internal/predicate",
	"cosmos/internal/profile",
	"cosmos/internal/stream",
	"cosmos/internal/transport",
}

func main() {
	// go vet probes the tool's identity with -V=full before first use,
	// and asks for its analyzer flag definitions with -flags (a JSON
	// array; cosmoslint exposes none to vet).
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("%s version devel comments-go-here buildID=do-not-cache\n",
			filepath.Base(os.Args[0]))
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}

	var (
		listFlag = flag.Bool("list", false, "list analyzers and exit")
		jsonFlag = flag.Bool("json", false, "emit diagnostics as JSON")
		allErrs  = flag.Bool("all-errdrop", false, "run errdrop on every package, not just the data path")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if !*allErrs {
		errdrop.ScopePrefixes = dataPathPackages
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, fset, err := runOn(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosmoslint: %v\n", err)
		os.Exit(2)
	}
	if *jsonFlag {
		printJSON(fset, diags)
	} else {
		for _, d := range diags {
			fmt.Println(framework.FormatDiagnostic(fset, d))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func runOn(dir string, patterns []string) ([]framework.Diagnostic, *token.FileSet, error) {
	prog, err := framework.Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	diags, err := framework.RunAnalyzers(prog, analysis.All())
	if err != nil {
		return nil, nil, err
	}
	return diags, prog.Fset, nil
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(fset *token.FileSet, diags []framework.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonDiag{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out) //lint:ignore errdrop stdout encode failure has no recovery
}

// vetCfg is the subset of the go vet unit-checker config this tool
// consumes; the rest of the protocol (facts, vetx) is satisfied with an
// empty output file since cosmoslint keeps no cross-unit facts.
type vetCfg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOutput string
}

// vetUnit handles one `go vet` unit: analyze the whole module rooted
// above the unit's directory, then report only diagnostics landing in
// the unit's files.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosmoslint: %v\n", err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cosmoslint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cosmoslint: %v\n", err)
			return 2
		}
	}
	root := moduleRoot(cfg.Dir)
	if root == "" || !inModule(root, cfg.ImportPath) {
		// Not our module (stdlib units, other deps): nothing to check.
		return 0
	}
	errdrop.ScopePrefixes = dataPathPackages
	diags, fset, err := runOn(root, []string{"./..."})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosmoslint: %v\n", err)
		return 2
	}
	unitFiles := map[string]bool{}
	for _, f := range cfg.GoFiles {
		unitFiles[f] = true
	}
	exit := 0
	for _, d := range diags {
		if unitFiles[fset.Position(d.Pos).Filename] {
			fmt.Fprintln(os.Stderr, framework.FormatDiagnostic(fset, d))
			exit = 2
		}
	}
	return exit
}

// inModule reports whether importPath lives in the module rooted at
// root (go vet hands the tool stdlib and dependency units too; those
// are skipped rather than re-analyzed).
func inModule(root, importPath string) bool {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			mod := strings.TrimSpace(rest)
			return importPath == mod || strings.HasPrefix(importPath, mod+"/")
		}
	}
	return false
}

// moduleRoot walks up from dir to the enclosing go.mod, or "".
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
