package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"cosmos/internal/stream"
)

// Wire format v2: the data plane of the TCP protocol.
//
// The control plane (requests, OKs, errors, session management) stays
// gob — it is cold and self-describing. The data plane (result tuples,
// by far the hottest server→client traffic) is re-encoded as
// length-prefixed binary frames using a codec compiled once per result
// schema, the same compile-at-control-plane trick predicate.Compile
// plays: resolve the column layout when the subscription is announced,
// then encode/decode tuples with zero reflection and zero per-value
// allocation.
//
// After the MsgHello negotiation agrees on v2, every server→client
// message carries a one-byte frame marker:
//
//	'G' | gob-encoded Response                 (control; self-delimiting)
//	'S' | u32 len | subID tag schema           (announce a subscription's layout)
//	'D' | u32 len | subID count firstSeq tuples (a batch of results)
//
// The client→server direction stays pure gob on every version: request
// traffic is cold, and keeping it untouched means the server's read
// loop never changes shape.
//
// 'D' payload layout (all integers little-endian):
//
//	u32  subID      pump-assigned per-connection subscription id
//	u16  count      number of tuples in the batch
//	u64  firstSeq   sequence of the first tuple; tuple i has firstSeq+i
//	tuple × count
//
// Each tuple is: i64 ts, then one value per schema column. Values
// carry a one-byte kind tag before their payload — the data model lets
// an int populate a float or time column (see stream.NewTuple's
// widening), so the schema alone does not pin the value kind and a
// faithful round trip must preserve it. Payloads are fixed-width
// 8-byte slots for int/float/time, one byte for bool, and
// uvarint-length-prefixed bytes for strings.
//
// 'S' payload layout:
//
//	u32 subID, str tag, str streamName, uvarint nfields,
//	then per field: str name, u8 kind, uvarint avgLen
//
// The pump emits an 'S' frame before a subscription's first 'D' frame
// and again whenever the result schema pointer changes; the client
// keeps a per-connection subID table, so reconnects (fresh connection,
// fresh pump) re-announce naturally.

// Wire format versions, negotiated in MsgHello: the client sends the
// highest version it speaks, the server answers with min(client, max).
// A pre-negotiation peer (no hello, or WireVersion 0) is v1.
const (
	WireV1  = 1 // every message gob-encoded, one frame per result
	WireV2  = 2 // gob control plane + binary batched data frames
	WireMax = WireV2
)

// Frame markers (v2 server→client stream).
const (
	frameGob    byte = 'G'
	frameData   byte = 'D'
	frameSchema byte = 'S'
)

// maxFramePayload bounds a declared frame length on the read side: a
// longer prefix means a corrupt stream (or a gob peer misread as v2),
// not a legitimate frame, and must error before allocating.
const maxFramePayload = 64 << 20

// batchSoftBytes flushes a growing batch frame before it exceeds this
// size; a single tuple larger than the cap still travels whole.
const batchSoftBytes = 56 << 10

// maxBatchTuples caps tuples per 'D' frame (count is a u16).
const maxBatchTuples = 4096

// negotiateWire picks the version a hello agrees on.
func negotiateWire(client, max int) int {
	if client <= 0 {
		return WireV1
	}
	if client > max {
		return max
	}
	return client
}

// framePool recycles frame payload buffers between the per-connection
// result pumps (encode side) and client frame readers (decode side).
var framePool = sync.Pool{
	New: func() interface{} { b := make([]byte, 0, 4096); return &b },
}

// maxPooledFrame keeps pathological frames (one giant string tuple)
// from pinning memory in the pool forever.
const maxPooledFrame = 1 << 20

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if cap(*b) <= maxPooledFrame {
		*b = (*b)[:0]
		framePool.Put(b)
	}
}

// tupleCodec is a result schema's compiled encoder/decoder. Compiling
// is a control-plane act (once per 'S' frame); the encode/decode
// methods run per tuple on the data plane with zero reflection —
// encode allocates nothing, decode allocates only the value slice and
// string copies.
type tupleCodec struct {
	schema   *stream.Schema
	arity    int
	sizeHint int // estimated encoded bytes per tuple, for buffer growth
}

func newTupleCodec(s *stream.Schema) *tupleCodec {
	c := &tupleCodec{schema: s, arity: s.Arity(), sizeHint: 8}
	for _, f := range s.Fields {
		switch f.Kind {
		case stream.KindString:
			c.sizeHint += 1 + 2 + f.AvgLen
		case stream.KindBool:
			c.sizeHint += 2
		default:
			c.sizeHint += 9
		}
	}
	return c
}

// appendTuple encodes t onto buf. The caller guarantees t.Schema is
// the codec's schema (batches are grouped by schema pointer), which
// pins the arity; value kinds are self-tagged.
//
//cosmos:hotpath
func (c *tupleCodec) appendTuple(buf []byte, t stream.Tuple) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(t.Ts)))
	for _, v := range t.Values {
		switch v.Kind() {
		case stream.KindInt:
			buf = append(buf, byte(stream.KindInt))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.AsInt()))
		case stream.KindFloat:
			buf = append(buf, byte(stream.KindFloat))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
		case stream.KindString:
			s := v.AsString()
			buf = append(buf, byte(stream.KindString))
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		case stream.KindBool:
			b := byte(0)
			if v.AsBool() {
				b = 1
			}
			buf = append(buf, byte(stream.KindBool), b)
		case stream.KindTime:
			buf = append(buf, byte(stream.KindTime))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v.AsTime())))
		default:
			// Invalid values cannot legally appear in a tuple
			// (stream.NewTuple rejects them); encode the tag so the
			// decoder errors instead of desynchronising.
			buf = append(buf, byte(v.Kind()))
		}
	}
	return buf
}

// decodeTuple decodes one tuple starting at b[pos], returning it and
// the position one past its end. Untrusted input: every read is
// bounds-checked and malformed bytes return an error, never panic.
func (c *tupleCodec) decodeTuple(b []byte, pos int) (stream.Tuple, int, error) {
	return c.decodeTupleInto(b, pos, nil)
}

// decodeTupleInto is decodeTuple with a caller-provided value slice
// (len >= arity), letting batch decoders amortise the per-tuple value
// allocation across a whole frame. The tuple keeps the slice.
func (c *tupleCodec) decodeTupleInto(b []byte, pos int, values []stream.Value) (stream.Tuple, int, error) {
	if pos+8 > len(b) {
		return stream.Tuple{}, 0, fmt.Errorf("transport: truncated tuple timestamp")
	}
	ts := stream.Timestamp(int64(binary.LittleEndian.Uint64(b[pos:])))
	pos += 8
	if len(values) < c.arity {
		values = make([]stream.Value, c.arity)
	} else {
		values = values[:c.arity]
	}
	for i := 0; i < c.arity; i++ {
		if pos >= len(b) {
			return stream.Tuple{}, 0, fmt.Errorf("transport: truncated tuple value %d", i)
		}
		kind := stream.Kind(b[pos])
		pos++
		switch kind {
		case stream.KindInt, stream.KindTime:
			if pos+8 > len(b) {
				return stream.Tuple{}, 0, fmt.Errorf("transport: truncated %v value", kind)
			}
			n := int64(binary.LittleEndian.Uint64(b[pos:]))
			pos += 8
			if kind == stream.KindInt {
				values[i] = stream.Int(n)
			} else {
				values[i] = stream.Time(stream.Timestamp(n))
			}
		case stream.KindFloat:
			if pos+8 > len(b) {
				return stream.Tuple{}, 0, fmt.Errorf("transport: truncated float value")
			}
			values[i] = stream.Float(math.Float64frombits(binary.LittleEndian.Uint64(b[pos:])))
			pos += 8
		case stream.KindBool:
			if pos >= len(b) {
				return stream.Tuple{}, 0, fmt.Errorf("transport: truncated bool value")
			}
			values[i] = stream.Bool(b[pos] != 0)
			pos++
		case stream.KindString:
			n, w := binary.Uvarint(b[pos:])
			if w <= 0 || n > uint64(len(b)-pos-w) {
				return stream.Tuple{}, 0, fmt.Errorf("transport: truncated string value")
			}
			pos += w
			values[i] = stream.String_(string(b[pos : pos+int(n)]))
			pos += int(n)
		default:
			return stream.Tuple{}, 0, fmt.Errorf("transport: unknown value kind %d", kind)
		}
	}
	t, err := stream.NewTuple(c.schema, ts, values...)
	if err != nil {
		return stream.Tuple{}, 0, fmt.Errorf("transport: decoded tuple rejected: %v", err)
	}
	return t, pos, nil
}

// appendString encodes a uvarint-length-prefixed string.
//
//cosmos:hotpath
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString decodes a uvarint-length-prefixed string at b[pos].
func readString(b []byte, pos int) (string, int, error) {
	n, w := binary.Uvarint(b[pos:])
	if w <= 0 || n > uint64(len(b)-pos-w) {
		return "", 0, fmt.Errorf("transport: truncated string")
	}
	pos += w
	return string(b[pos : pos+int(n)]), pos + int(n), nil
}

// appendSchemaFrame builds an 'S' payload announcing subID's layout.
func appendSchemaFrame(buf []byte, subID uint32, tag string, s *stream.Schema) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, subID)
	buf = appendString(buf, tag)
	buf = appendString(buf, s.Stream)
	buf = binary.AppendUvarint(buf, uint64(len(s.Fields)))
	for _, f := range s.Fields {
		buf = appendString(buf, f.Name)
		buf = append(buf, byte(f.Kind))
		buf = binary.AppendUvarint(buf, uint64(f.AvgLen))
	}
	return buf
}

// decodeSchemaFrame parses an 'S' payload. The schema is rebuilt
// through stream.NewSchema so a corrupt frame fails validation instead
// of producing a half-formed schema.
func decodeSchemaFrame(b []byte) (subID uint32, tag string, schema *stream.Schema, err error) {
	if len(b) < 4 {
		return 0, "", nil, fmt.Errorf("transport: truncated schema frame")
	}
	subID = binary.LittleEndian.Uint32(b)
	pos := 4
	if tag, pos, err = readString(b, pos); err != nil {
		return 0, "", nil, err
	}
	var name string
	if name, pos, err = readString(b, pos); err != nil {
		return 0, "", nil, err
	}
	nf, w := binary.Uvarint(b[pos:])
	if w <= 0 || nf > uint64(len(b)-pos) {
		return 0, "", nil, fmt.Errorf("transport: truncated schema field count")
	}
	pos += w
	fields := make([]stream.Field, nf)
	for i := range fields {
		var fname string
		if fname, pos, err = readString(b, pos); err != nil {
			return 0, "", nil, err
		}
		if pos >= len(b) {
			return 0, "", nil, fmt.Errorf("transport: truncated schema field kind")
		}
		kind := stream.Kind(b[pos])
		pos++
		avg, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return 0, "", nil, fmt.Errorf("transport: truncated schema field avglen")
		}
		pos += w
		fields[i] = stream.Field{Name: fname, Kind: kind, AvgLen: int(avg)}
	}
	if pos != len(b) {
		return 0, "", nil, fmt.Errorf("transport: %d trailing bytes in schema frame", len(b)-pos)
	}
	schema, err = stream.NewSchema(name, fields...)
	if err != nil {
		return 0, "", nil, fmt.Errorf("transport: decoded schema rejected: %v", err)
	}
	return subID, tag, schema, nil
}

// dataHeaderSize is the fixed prefix of a 'D' payload: subID + count +
// firstSeq.
const dataHeaderSize = 4 + 2 + 8

// appendDataHeader writes the batch header; count is patched in by
// patchDataCount once the batch is sealed.
//
//cosmos:hotpath
func appendDataHeader(buf []byte, subID uint32, firstSeq uint64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, subID)
	buf = append(buf, 0, 0) // count placeholder
	return binary.LittleEndian.AppendUint64(buf, firstSeq)
}

//cosmos:hotpath
func patchDataCount(buf []byte, count int) {
	binary.LittleEndian.PutUint16(buf[4:6], uint16(count))
}

// decodeDataHeader parses a 'D' payload prefix.
func decodeDataHeader(b []byte) (subID uint32, count int, firstSeq uint64, err error) {
	if len(b) < dataHeaderSize {
		return 0, 0, 0, fmt.Errorf("transport: truncated data frame header")
	}
	subID = binary.LittleEndian.Uint32(b)
	count = int(binary.LittleEndian.Uint16(b[4:6]))
	firstSeq = binary.LittleEndian.Uint64(b[6:14])
	return subID, count, firstSeq, nil
}
