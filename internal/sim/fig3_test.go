package sim

import "testing"

func TestFigure3ShareBeatsNonShareOnSharedLink(t *testing.T) {
	res, err := RunFigure3(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q1Results == 0 || res.Q2Results == 0 {
		t.Fatal("workload produced no results")
	}
	var shared *Fig3Link
	for i := range res.Links {
		if res.Links[i].Name == "n1-n2" {
			shared = &res.Links[i]
		}
	}
	if shared == nil {
		t.Fatal("missing n1-n2 link")
	}
	// The paper's Figure 3 claim: the overlapping contents of s1 and s2
	// cross the shared n1–n2 link once under sharing.
	if shared.ShareBytes >= shared.NonShareBytes {
		t.Errorf("shared link: share=%d non-share=%d", shared.ShareBytes, shared.NonShareBytes)
	}
	// One representative stream crosses the link instead of two member
	// streams: strictly fewer datagrams.
	if shared.ShareTuples >= shared.NonShareTuples {
		t.Errorf("shared link tuples: share=%d non-share=%d", shared.ShareTuples, shared.NonShareTuples)
	}
	if res.ShareTotal >= res.NonShareTotal {
		t.Errorf("total: share=%d non-share=%d", res.ShareTotal, res.NonShareTotal)
	}
}

func TestFigure3Deterministic(t *testing.T) {
	a, err := RunFigure3(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure3(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.ShareTotal != b.ShareTotal || a.NonShareTotal != b.NonShareTotal {
		t.Error("same seed must reproduce identical byte counts")
	}
}
