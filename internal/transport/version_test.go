package transport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
)

// startServerWire spins up a system whose server negotiates at most
// maxWire.
func startServerWire(t *testing.T, maxWire int) (addr string, shutdown func()) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Nodes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys, WithWireVersion(maxWire))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

// TestWireVersionCompatMatrix: every client offer × server cap
// combination must negotiate min(offer, cap) and still deliver results
// end-to-end — a v1 peer on either side falls the whole connection back
// to plain gob.
func TestWireVersionCompatMatrix(t *testing.T) {
	cases := []struct {
		name           string
		clientOffer    int // Config.WireVersion (0 = newest)
		serverMax      int
		wantNegotiated int
	}{
		{"v2-client/v2-server", 0, WireMax, WireV2},
		{"v1-client/v2-server", WireV1, WireMax, WireV1},
		{"v2-client/v1-server", 0, WireV1, WireV1},
		{"v1-client/v1-server", WireV1, WireV1, WireV1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, shutdown := startServerWire(t, tc.serverMax)
			defer shutdown()

			c, err := DialConfig(addr, Config{WireVersion: tc.clientOffer})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.WireVersion(); got != tc.wantNegotiated {
				t.Fatalf("negotiated wire version %d, want %d", got, tc.wantNegotiated)
			}

			info := auctionInfo()
			if err := c.Register(info, 1); err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var got []stream.Tuple
			_, err = c.Submit("SELECT itemID, start_price FROM OpenAuction [Now] WHERE start_price > 100", 5,
				func(tp stream.Tuple, _ uint64) {
					mu.Lock()
					got = append(got, tp)
					mu.Unlock()
				}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				tp := stream.MustTuple(info.Schema, stream.Timestamp(1000+i),
					stream.Int(int64(i)), stream.Float(150.5))
				if err := c.Publish(tp); err != nil {
					t.Fatal(err)
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for {
				mu.Lock()
				n := len(got)
				mu.Unlock()
				if n >= 5 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("got %d/5 results over negotiated v%d", n, tc.wantNegotiated)
				}
				time.Sleep(5 * time.Millisecond)
			}
			mu.Lock()
			defer mu.Unlock()
			for i, tp := range got[:5] {
				if tp.Values[0].AsInt() != int64(i) || tp.Values[1].AsFloat() != 150.5 {
					t.Fatalf("result %d corrupted across v%d wire: %v", i, tc.wantNegotiated, tp)
				}
				if tp.Values[1].Kind() != stream.KindFloat {
					t.Fatalf("result %d kind mangled: %v", i, tp.Values[1].Kind())
				}
			}
		})
	}
}

// TestWireVersionInvalidOffer: out-of-range client configs fail fast at
// dial time with a version message, not a hung or garbled connection.
func TestWireVersionInvalidOffer(t *testing.T) {
	addr, shutdown := startServerWire(t, WireMax)
	defer shutdown()
	for _, bad := range []int{-1, WireMax + 1} {
		if _, err := DialConfig(addr, Config{WireVersion: bad}); err == nil {
			t.Fatalf("WireVersion %d accepted", bad)
		} else if !strings.Contains(err.Error(), "wire version") {
			t.Fatalf("WireVersion %d error %q does not mention wire version", bad, err)
		}
	}
}

// TestServerWireCapOption pins WithWireVersion validation.
func TestServerWireCapOption(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Nodes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{WireV1, WireMax} {
		srv := NewServer(sys, WithWireVersion(v))
		if srv.maxWire != v {
			t.Fatalf("WithWireVersion(%d) left maxWire %d", v, srv.maxWire)
		}
	}
	// Out-of-range caps are clamped to the supported range rather than
	// silently disabling framing negotiation.
	if srv := NewServer(sys, WithWireVersion(0)); srv.maxWire < WireV1 || srv.maxWire > WireMax {
		t.Fatalf("WithWireVersion(0) produced maxWire %d", srv.maxWire)
	}
}
