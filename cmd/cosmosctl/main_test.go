package main

import (
	"testing"

	"cosmos/internal/stream"
)

func TestParseSchemaDDL(t *testing.T) {
	s, err := parseSchemaDDL("Trades(symbol string, price float, size int)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Stream != "Trades" || s.Arity() != 3 {
		t.Errorf("schema = %v", s)
	}
	if f, _ := s.FieldByName("price"); f.Kind != stream.KindFloat {
		t.Errorf("price kind = %v", f.Kind)
	}
	bad := []string{
		"",
		"NoParens",
		"Name(missing)",
		"Name(a badkind)",
		"Name(a int",
	}
	for _, ddl := range bad {
		if _, err := parseSchemaDDL(ddl); err == nil {
			t.Errorf("parseSchemaDDL(%q) should fail", ddl)
		}
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		kind stream.Kind
		in   string
		want stream.Value
	}{
		{stream.KindInt, "42", stream.Int(42)},
		{stream.KindFloat, "2.5", stream.Float(2.5)},
		{stream.KindBool, "true", stream.Bool(true)},
		{stream.KindTime, "1000", stream.Time(1000)},
		{stream.KindString, "hello", stream.String_("hello")},
	}
	for _, c := range cases {
		got, err := parseValue(c.kind, c.in)
		if err != nil {
			t.Fatalf("parseValue(%v, %q): %v", c.kind, c.in, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("parseValue(%v, %q) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
	if _, err := parseValue(stream.KindInt, "abc"); err == nil {
		t.Error("bad int should fail")
	}
	if _, err := parseValue(stream.KindBool, "maybe"); err == nil {
		t.Error("bad bool should fail")
	}
}
