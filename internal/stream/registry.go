package stream

import (
	"fmt"
	"sort"
	"sync"
)

// AttrStats summarises the value distribution of one numeric attribute,
// used by the cost model for selectivity estimation (uniformity assumed,
// as is standard for System-R style estimators).
type AttrStats struct {
	Min, Max float64
	Distinct int // number of distinct values; 0 means unknown
}

// Span returns the width of the attribute's active domain.
func (a AttrStats) Span() float64 {
	if a.Max <= a.Min {
		return 0
	}
	return a.Max - a.Min
}

// Info is the registry record for one stream: its schema, its publication
// rate, and per-attribute statistics. Sources advertise Info records to the
// data layer (paper §2: "data sources advertise the source streams").
type Info struct {
	Schema *Schema
	// Rate is the publication rate in tuples per second.
	Rate float64
	// Stats holds per-attribute numeric statistics keyed by attribute name.
	Stats map[string]AttrStats
}

// TupleWidth returns the assumed full-tuple wire width in bytes.
func (in *Info) TupleWidth() int { return in.Schema.TupleWidth() + 8 }

// Bps returns the full-rate bandwidth of the stream in bytes per second.
func (in *Info) Bps() float64 { return in.Rate * float64(in.TupleWidth()) }

// Registry is a thread-safe catalogue of stream Info records. In COSMOS the
// schema catalogue is flooded to every node when the number of streams is
// small, or held in a DHT keyed by stream name otherwise (paper §3); both
// distribution mechanisms replicate into a local Registry at each node.
type Registry struct {
	mu      sync.RWMutex
	streams map[string]*Info
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{streams: make(map[string]*Info)}
}

// Register adds or replaces the record for a stream. It errors if the
// schema's stream name is empty.
func (r *Registry) Register(info *Info) error {
	if info == nil || info.Schema == nil || info.Schema.Stream == "" {
		return fmt.Errorf("stream: registering invalid stream info")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.streams[info.Schema.Stream] = info
	return nil
}

// Lookup returns the record for a stream name.
func (r *Registry) Lookup(name string) (*Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	in, ok := r.streams[name]
	return in, ok
}

// Schema returns just the schema for a stream name.
func (r *Registry) Schema(name string) (*Schema, bool) {
	in, ok := r.Lookup(name)
	if !ok {
		return nil, false
	}
	return in.Schema, true
}

// Deregister removes a stream record; removing an absent name is a no-op.
func (r *Registry) Deregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.streams, name)
}

// Names returns all registered stream names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.streams))
	for n := range r.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered streams.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.streams)
}

// Snapshot returns a copy of the registry's records keyed by stream name;
// used by the flooding dissemination path.
func (r *Registry) Snapshot() map[string]*Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]*Info, len(r.streams))
	for k, v := range r.streams {
		out[k] = v
	}
	return out
}
