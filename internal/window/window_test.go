package window

import (
	"testing"
	"testing/quick"

	"cosmos/internal/stream"
)

func TestContains(t *testing.T) {
	cases := []struct {
		ts, now stream.Timestamp
		T       stream.Duration
		want    bool
	}{
		{100, 100, stream.Now, true},  // [Now] keeps the current instant
		{99, 100, stream.Now, false},  // ... and nothing older
		{101, 100, stream.Now, false}, // future tuples are never in-window
		{50, 100, 50, true},           // boundary: now - T == ts
		{49, 100, 50, false},          // just past the boundary
		{0, 100, stream.Unbounded, true},
		{101, 100, stream.Unbounded, false},
	}
	for _, c := range cases {
		if got := Contains(c.ts, c.now, c.T); got != c.want {
			t.Errorf("Contains(%d,%d,%v) = %v, want %v", c.ts, c.now, c.T, got, c.want)
		}
	}
}

func TestExpired(t *testing.T) {
	if !Expired(10, 100, 50) {
		t.Error("ts=10 at now=100 with T=50 is expired")
	}
	if Expired(50, 100, 50) {
		t.Error("boundary tuple is not expired")
	}
	if Expired(0, 1<<40, stream.Unbounded) {
		t.Error("unbounded windows never expire")
	}
}

func TestContainsExpiredComplementary(t *testing.T) {
	// For past tuples, Contains and Expired are complementary.
	f := func(age uint16, T uint16) bool {
		now := stream.Timestamp(1 << 20)
		ts := now - stream.Timestamp(age)
		win := stream.Duration(T)
		return Contains(ts, now, win) != Expired(ts, now, win)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinableLemma1(t *testing.T) {
	// Paper example: OpenAuction [Range 3 Hour] joined with
	// ClosedAuction [Now]: −3h ≤ tO − tC ≤ 0.
	T1 := 3 * stream.Hour
	T2 := stream.Now
	h := stream.Timestamp(stream.Hour)
	cases := []struct {
		tO, tC stream.Timestamp
		want   bool
	}{
		{0, 0, true},
		{0, 2 * h, true},  // opened 2h before close
		{0, 3 * h, true},  // exactly 3h (boundary)
		{0, 4 * h, false}, // closed too late
		{2 * h, 0, false}, // open after close: tO − tC > 0 violates T2=Now
	}
	for _, c := range cases {
		if got := Joinable(c.tO, c.tC, T1, T2); got != c.want {
			t.Errorf("Joinable(%d,%d) = %v, want %v", c.tO, c.tC, got, c.want)
		}
	}
}

func TestJoinableUnbounded(t *testing.T) {
	if !Joinable(0, 1<<40, stream.Unbounded, stream.Now) {
		t.Error("unbounded T1 admits arbitrarily old t1")
	}
	if !Joinable(1<<40, 0, stream.Now, stream.Unbounded) {
		t.Error("unbounded T2 admits arbitrarily old t2")
	}
	if Joinable(1<<40, 0, stream.Now, stream.Now) {
		t.Error("both Now windows require equal timestamps")
	}
}

// TestJoinableMatchesWindowSemantics cross-validates Lemma 1 against the
// operational definition: t1 and t2 join iff there exists an evaluation
// instant τ at which t1 is in S1's window and t2 is in S2's window.
// Over discrete time it suffices to check τ = max(ts1, ts2).
func TestJoinableMatchesWindowSemantics(t *testing.T) {
	f := func(a, b uint8, w1, w2 uint8) bool {
		ts1, ts2 := stream.Timestamp(a), stream.Timestamp(b)
		T1, T2 := stream.Duration(w1), stream.Duration(w2)
		tau := ts1
		if ts2 > tau {
			tau = ts2
		}
		operational := Contains(ts1, tau, T1) && Contains(ts2, tau, T2)
		return Joinable(ts1, ts2, T1, T2) == operational
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCovers(t *testing.T) {
	if !Covers(5*stream.Hour, 3*stream.Hour) {
		t.Error("5h covers 3h")
	}
	if Covers(3*stream.Hour, 5*stream.Hour) {
		t.Error("3h does not cover 5h")
	}
	if !Covers(stream.Unbounded, 5*stream.Hour) || !Covers(stream.Unbounded, stream.Unbounded) {
		t.Error("unbounded covers everything")
	}
	if Covers(5*stream.Hour, stream.Unbounded) {
		t.Error("finite cannot cover unbounded")
	}
	if !Covers(stream.Now, stream.Now) {
		t.Error("Now covers Now")
	}
}

func TestMax(t *testing.T) {
	if Max(3*stream.Hour, 5*stream.Hour) != 5*stream.Hour {
		t.Error("max wrong")
	}
	if Max(stream.Unbounded, stream.Now) != stream.Unbounded {
		t.Error("unbounded dominates")
	}
	if Max(stream.Now, stream.Now) != stream.Now {
		t.Error("now/now")
	}
}

// TestCoversConsistentWithContains: if Covers(outer, inner) then every
// tuple in the inner window is in the outer window at the same instant.
func TestCoversConsistentWithContains(t *testing.T) {
	f := func(age uint8, wOuter, wInner uint8) bool {
		outer, inner := stream.Duration(wOuter), stream.Duration(wInner)
		if !Covers(outer, inner) {
			return true
		}
		now := stream.Timestamp(1 << 10)
		ts := now - stream.Timestamp(age)
		if Contains(ts, now, inner) && !Contains(ts, now, outer) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
