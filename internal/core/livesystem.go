package core

import "cosmos/internal/cbn"

// LiveSystem is a System deployed over the concurrent cbn.LiveNet: one
// goroutine per broker, sharded execution runtimes on the processors
// (Options.ExecWorkers), and workers publishing results straight into
// the network through thread-safe per-worker clients — no outbox, no
// world-stop on the data path. Emissions reach subscribers while ingest
// continues; Quiesce remains available as a stabilisation barrier for
// tests, experiment readouts and checkpoint boundaries.
//
// The synchronous System over SimNet stays byte-deterministic and is the
// differential reference: with sources publishing from one node, a
// LiveSystem delivers, per query, exactly the result sequence of the
// synchronous system (per-plan total order; no cross-plan order).
//
// Consistency is the CBN's: control-plane changes (query submission and
// cancellation, failover re-advertisement) propagate asynchronously, so
// tuples published before a new subscription settles may not reach it —
// exactly the semantics of a distributed content-based network. Call
// Quiesce after a batch of control-plane changes when a test or
// experiment needs them visible before traffic resumes.
type LiveSystem struct {
	*System
}

// NewLiveSystem builds the overlay and processors like NewSystem, but
// deploys them over a started LiveNet. Close must be called to release
// the network and runtime goroutines.
func NewLiveSystem(opts Options) (*LiveSystem, error) {
	s, err := newSystem(opts, true)
	if err != nil {
		return nil, err
	}
	return &LiveSystem{System: s}, nil
}

// Net exposes the live network (for inspection and tests).
func (ls *LiveSystem) Net() *cbn.LiveNet { return ls.live }

// Close stops every processor runtime and the network. Queued work is
// dropped; call Quiesce first for a graceful drain. Idempotent.
func (ls *LiveSystem) Close() {
	for _, p := range ls.procs {
		p.shutdownExec()
	}
	ls.live.Stop()
}
