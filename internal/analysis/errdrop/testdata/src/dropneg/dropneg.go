// Package dropneg is the errdrop false-positive regression guard: every
// error here is consumed, explicitly discarded, or structurally exempt.
package dropneg

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func failPair() (int, error) { return 0, errors.New("boom") }

type conn struct{}

func (conn) Close() error { return nil }

func noError() {}

func consumed() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := failPair()
	_ = n
	return err
}

func explicitDiscard(c conn) {
	_ = fail()
	_ = c.Close()
}

func deferredCleanup(c conn) {
	defer c.Close()
	defer fail()
}

func voidCalls() {
	noError()
	println("not an error result")
}

func conversions() {
	type myErr error
	_ = myErr(nil)
}

// infallibleWriters keep error in their signatures only for io.Writer;
// the contract says the error is always nil.
func infallibleWriters() string {
	var sb strings.Builder
	sb.WriteString("a")
	sb.WriteByte('b')
	fmt.Fprintf(&sb, "%d", 1)
	var buf bytes.Buffer
	buf.WriteString("c")
	fmt.Fprintln(&buf, "d")
	return sb.String() + buf.String()
}
