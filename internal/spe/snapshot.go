package spe

import (
	"fmt"

	"cosmos/internal/stream"
)

// Snapshot captures a plan's execution state — the live window buffers
// and the watermark — for query-layer fault tolerance (paper §2: the
// query-layer module "is responsible for recovering the processing of
// queries from failures"). A restored plan continues exactly where the
// snapshot was taken; derived state (hash partitions, incremental
// aggregate accumulators) is rebuilt from the buffers on restore rather
// than exported.
type Snapshot struct {
	PlanID    string
	Watermark stream.Timestamp
	// Buffers maps alias → buffered live tuples in arrival order.
	Buffers map[string][]stream.Tuple
}

// Snapshot exports the plan's current state. Tuples are shared, not
// copied; they are immutable by convention.
func (p *Plan) Snapshot() *Snapshot {
	s := &Snapshot{
		PlanID:    p.ID,
		Watermark: p.watermark,
		Buffers:   map[string][]stream.Tuple{},
	}
	for _, in := range p.inputs {
		s.Buffers[in.alias] = append([]stream.Tuple(nil), in.live()...)
	}
	return s
}

// Restore loads a snapshot into a freshly compiled plan of the same
// query, rebuilding the derived per-plan state (equi-join partitions,
// per-group aggregate accumulators) from the restored buffers. It errors
// when the snapshot's aliases do not match the plan, or when a restored
// tuple's layout does not match the plan's input schema.
func (p *Plan) Restore(s *Snapshot) error {
	for alias := range s.Buffers {
		if _, ok := p.byAlias[alias]; !ok {
			return fmt.Errorf("spe: snapshot alias %q unknown to plan %s", alias, p.ID)
		}
	}
	for _, in := range p.inputs {
		buf, ok := s.Buffers[in.alias]
		if !ok {
			return fmt.Errorf("spe: snapshot lacks alias %q", in.alias)
		}
		for i := len(buf); i < len(in.buf); i++ {
			in.buf[i] = stream.Tuple{} // release refs beyond the restored length
		}
		in.buf = append(in.buf[:0], buf...)
		in.head, in.base, in.evicted = 0, 0, 0
	}
	p.watermark = s.Watermark
	return p.rebuildState()
}

// rebuildState reconstructs the derived state from the live buffers.
func (p *Plan) rebuildState() error {
	if p.agg != nil {
		p.agg.reset()
	}
	for _, in := range p.inputs {
		if in.hash != nil {
			in.hash.reset()
		}
		for i, t := range in.live() {
			if p.compiled {
				// Compiled access trusts the input schema layout; a
				// snapshot from the same query restores tuples adapted
				// to an equal layout under a different pointer.
				if t.Schema != in.schema && !t.Schema.Equal(in.schema) {
					return fmt.Errorf("spe: snapshot tuple of %s does not match plan %s input layout",
						t.Schema.Stream, p.ID)
				}
			}
			seq := in.base + uint64(in.head+i)
			if in.hash != nil {
				in.hash.insert(t, seq)
			}
			if p.agg != nil {
				if _, err := p.agg.admit(t, seq, p.compiled); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
