package core

import (
	"time"

	"cosmos/internal/cost"
)

// BuildCostFeed distills two SystemStats snapshots bracketing a
// measurement window into the typed runtime feed the adaptive
// re-optimisation layer consumes (see cost.Feed). prev may be the zero
// SystemStats to attribute all counters to the window (rates since
// start). Works identically on every backend — the snapshots are the
// transport-independent stats shape, so the feed can be built from
// embedded systems and from MsgStats responses alike.
func BuildCostFeed(prev, cur SystemStats, window time.Duration) cost.Feed {
	f := cost.Feed{
		Window:      window,
		IngestRate:  cost.Rate(cur.Ingested-prev.Ingested, window),
		DeliverRate: cost.Rate(cur.Delivered-prev.Delivered, window),
	}

	prevStages := map[string]int64{}
	for _, s := range prev.Stages {
		prevStages[s.Stage] = s.Count
	}
	for _, s := range cur.Stages {
		p50, p99, p9999 := cost.Quantiles(s.Lat)
		f.Stages = append(f.Stages, cost.StageFeed{
			Stage: s.Stage,
			Rate:  cost.Rate(s.Count-prevStages[s.Stage], window),
			P50:   p50, P99: p99, P9999: p9999,
		})
	}

	type planKey struct {
		proc int
		plan string
	}
	prevPlans := map[planKey]PlanStats{}
	for _, p := range prev.Plans {
		prevPlans[planKey{p.Proc, p.Plan}] = p
	}
	for _, p := range cur.Plans {
		old := prevPlans[planKey{p.Proc, p.Plan}]
		pushes := p.Pushes - old.Pushes
		emits := p.Emits - old.Emits
		pf := cost.PlanFeed{
			Plan:     p.Plan,
			Proc:     p.Proc,
			Queries:  p.Queries,
			PushRate: cost.Rate(pushes, window),
			EmitRate: cost.Rate(emits, window),
		}
		if pushes > 0 {
			pf.Selectivity = float64(emits) / float64(pushes)
		}
		pf.PushP50, pf.PushP99, _ = cost.Quantiles(p.PushLat)
		f.Plans = append(f.Plans, pf)
	}

	type linkKey struct{ a, b int }
	prevLinks := map[linkKey]int64{}
	prevMsgs := map[linkKey]int64{}
	for _, l := range prev.Links {
		prevLinks[linkKey{l.A, l.B}] = l.DataBytes
		prevMsgs[linkKey{l.A, l.B}] = l.DataMsgs
	}
	for _, l := range cur.Links {
		k := linkKey{l.A, l.B}
		f.Links = append(f.Links, cost.LinkFeed{
			A: l.A, B: l.B,
			DataBytesPerSec: cost.Rate(l.DataBytes-prevLinks[k], window),
			DataMsgsPerSec:  cost.Rate(l.DataMsgs-prevMsgs[k], window),
			DelayMs:         l.DelayMs,
		})
	}
	return f
}
