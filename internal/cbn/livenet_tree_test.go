package cbn

import (
	"sync"
	"sync/atomic"
	"testing"

	"cosmos/internal/overlay"
	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

// TestLiveNetOverGeneratedTree runs the concurrent network over a real
// MST dissemination tree with several publishers and subscribers, and
// cross-checks delivery counts against the SimNet on the same scenario.
func TestLiveNetOverGeneratedTree(t *testing.T) {
	g, err := topology.GeneratePowerLaw(24, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := overlay.MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	type scenario struct {
		srcNode  int
		subNodes []int
		minTemp  float64
	}
	sc := scenario{srcNode: 3, subNodes: []int{7, 15, 22}, minTemp: 20}

	runLive := func() []int64 {
		net := NewLiveNet(tree.NumNodes())
		for v := 0; v < tree.NumNodes(); v++ {
			if v != tree.Root {
				if err := net.AddLink(v, tree.Parent[v]); err != nil {
					t.Fatal(err)
				}
			}
		}
		src, err := net.AttachClient(sc.srcNode)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]atomic.Int64, len(sc.subNodes))
		var wg sync.WaitGroup
		subs := make([]*LiveClient, len(sc.subNodes))
		for i, node := range sc.subNodes {
			c, err := net.AttachClient(node)
			if err != nil {
				t.Fatal(err)
			}
			i := i
			c.SetOnTuple(func(stream.Tuple) { counts[i].Add(1) })
			subs[i] = c
		}
		net.Start()
		defer net.Stop()
		src.Advertise("Sensor1")
		net.Quiesce()
		for _, c := range subs {
			c.Subscribe(tempProfile(sc.minTemp, nil))
		}
		net.Quiesce()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				src.Publish(sensorTuple(stream.Timestamp(i), int64(i%5), float64(i%40), 0.5))
			}
		}()
		wg.Wait()
		net.Quiesce()
		out := make([]int64, len(counts))
		for i := range counts {
			out[i] = counts[i].Load()
		}
		return out
	}

	runSim := func() []int64 {
		net := NewSimNetFromTree(tree)
		src := net.AttachClient(sc.srcNode)
		counts := make([]int64, len(sc.subNodes))
		for i, node := range sc.subNodes {
			c := net.AttachClient(node)
			i := i
			c.OnTuple = func(stream.Tuple) { counts[i]++ }
			src.Advertise("Sensor1")
			c.Subscribe(tempProfile(sc.minTemp, nil))
		}
		for i := 0; i < 100; i++ {
			if err := src.Publish(sensorTuple(stream.Timestamp(i), int64(i%5), float64(i%40), 0.5)); err != nil {
				t.Fatal(err)
			}
		}
		return counts
	}

	live := runLive()
	sim := runSim()
	for i := range live {
		if live[i] != sim[i] {
			t.Errorf("subscriber %d: live=%d sim=%d", i, live[i], sim[i])
		}
		if live[i] == 0 {
			t.Errorf("subscriber %d received nothing", i)
		}
	}
}

func TestBrokerDemandAndKnowsSource(t *testing.T) {
	b := NewBroker(0)
	b.AttachIface(0)
	b.AttachIface(1)
	if b.KnowsSource("Sensor1") {
		t.Error("no advert yet")
	}
	b.HandleAdvertise("Sensor1", 0)
	if !b.KnowsSource("Sensor1") {
		t.Error("advert not recorded")
	}
	if b.DemandOn(1) != nil {
		t.Error("no demand yet")
	}
	p := profile.New()
	p.AddStream("Sensor1", []string{"temp"}, predicate.DNF{
		{predicate.C("temp", predicate.GT, stream.Float(5))},
	})
	forwards := b.HandleSubscribe(p, 1)
	// The subscription must route toward the advertiser on iface 0.
	if len(forwards) != 1 || forwards[0].Iface != 0 {
		t.Fatalf("forwards = %v", forwards)
	}
	demand := b.DemandOn(1)
	if demand == nil || demand.FilterFor("Sensor1").IsTrue() {
		t.Errorf("demand = %v", demand)
	}
}
