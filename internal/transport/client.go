package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"cosmos/internal/stream"
)

// Client is a COSMOS service client: it registers streams, publishes
// tuples, and submits continuous queries over one TCP connection.
// Result tuples arrive asynchronously on per-query callbacks.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder

	mu        sync.Mutex
	nextID    uint64
	pending   map[uint64]chan *Response
	onResult  map[string]func(stream.Tuple)
	schemas   map[string]*stream.Schema
	closed    bool
	closeErr  error
	closeOnce sync.Once
	done      chan struct{}
}

// Dial connects to a cosmosd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		pending:  map[uint64]chan *Response{},
		onResult: map[string]func(stream.Tuple){},
		schemas:  map[string]*stream.Schema{},
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close terminates the connection; outstanding calls fail.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.conn.Close()
		<-c.done
	})
	return nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	dec := gob.NewDecoder(c.conn)
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			c.closeErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		if resp.Kind == MsgResult {
			c.handleResult(&resp)
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			r := resp
			ch <- &r
		}
	}
}

func (c *Client) handleResult(resp *Response) {
	schema, err := FromWireSchema(resp.Schema)
	if err != nil {
		return
	}
	t, err := FromWireTuple(resp.Tuple, schema)
	if err != nil {
		return
	}
	c.mu.Lock()
	fn := c.onResult[schema.Stream] // result stream name == query tag
	c.mu.Unlock()
	if fn != nil {
		fn(t)
	}
}

// call sends a request and waits for its response.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: client closed")
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *Response, 1)
	c.pending[req.ID] = ch
	err := c.enc.Encode(req)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("transport: connection lost: %v", c.closeErr)
	}
	if resp.Kind == MsgError {
		return nil, fmt.Errorf("transport: server: %s", resp.Error)
	}
	return resp, nil
}

// Register announces a source stream hosted at an overlay node.
func (c *Client) Register(info *stream.Info, node int) error {
	_, err := c.call(&Request{Kind: MsgRegister, Info: ToWireInfo(info), Node: node})
	if err == nil {
		c.mu.Lock()
		c.schemas[info.Schema.Stream] = info.Schema
		c.mu.Unlock()
	}
	return err
}

// Publish sends one tuple of a registered stream.
func (c *Client) Publish(t stream.Tuple) error {
	_, err := c.call(&Request{Kind: MsgPublish, Tuple: ToWireTuple(t)})
	return err
}

// Submit registers a continuous query for a user at an overlay node;
// results stream into onResult until Cancel.
func (c *Client) Submit(cqlText string, userNode int, onResult func(stream.Tuple)) (string, error) {
	resp, err := c.call(&Request{Kind: MsgSubmit, CQL: cqlText, UserNode: userNode})
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.onResult[resp.QueryTag] = onResult
	c.mu.Unlock()
	return resp.QueryTag, nil
}

// Cancel stops a query.
func (c *Client) Cancel(tag string) error {
	_, err := c.call(&Request{Kind: MsgCancel, QueryTag: tag})
	c.mu.Lock()
	delete(c.onResult, tag)
	c.mu.Unlock()
	return err
}

// Stats fetches daemon statistics.
func (c *Client) Stats() (SystemStats, error) {
	resp, err := c.call(&Request{Kind: MsgStats})
	if err != nil {
		return SystemStats{}, err
	}
	return resp.Stats, nil
}
