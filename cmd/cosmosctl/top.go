package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"cosmos"
	"cosmos/internal/core"
	"cosmos/internal/cost"
)

// cmdTop renders a refreshing per-stage / per-query / per-link view of
// a running deployment. Each frame is built from two Stats() snapshots
// bracketing the refresh interval, distilled through the same typed
// feed (core.BuildCostFeed) the adaptive re-optimisation layer
// consumes — rates are real deltas over the window, latency quantiles
// come from the sampled histograms. `-n 1` prints a single frame with
// no escape codes, which is what scripts and smoke tests want.
func cmdTop(c cosmos.Client, args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "refresh interval")
	n := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
	nlinks := fs.Int("links", 5, "busiest links to show")
	fs.Parse(args)
	if *interval <= 0 {
		fail("-interval must be positive")
	}

	prev, err := c.Stats()
	if err != nil {
		fail("%v", err)
	}
	prevAt := time.Now()
	for i := 0; *n == 0 || i < *n; i++ {
		time.Sleep(*interval)
		cur, err := c.Stats()
		if err != nil {
			fail("%v", err)
		}
		now := time.Now()
		if *n != 1 {
			fmt.Print("\x1b[H\x1b[2J") // home + clear: refresh in place
		}
		renderTop(prev, cur, now.Sub(prevAt), *nlinks)
		prev, prevAt = cur, now
	}
}

func renderTop(prev, cur cosmos.SystemStats, window time.Duration, nlinks int) {
	feed := core.BuildCostFeed(prev, cur, window)
	var b strings.Builder

	fmt.Fprintf(&b, "cosmos top  queries=%d processors=%d  ingest=%s deliver=%s  window=%s\n",
		cur.Queries, cur.Processors,
		fmtRate(feed.IngestRate), fmtRate(feed.DeliverRate), window.Round(time.Millisecond))
	switch {
	case cur.SampleEvery > 1:
		fmt.Fprintf(&b, "latency sampled 1-in-%d\n", cur.SampleEvery)
	case cur.SampleEvery == 0:
		b.WriteString("latency sampling off\n")
	}

	b.WriteString("\nSTAGE      EVENTS        RATE       P50        P99        P99.99\n")
	curStages := map[string]int64{}
	for _, s := range cur.Stages {
		curStages[s.Stage] = s.Count
	}
	for _, s := range feed.Stages {
		fmt.Fprintf(&b, "%-10s %-13d %-10s %-10s %-10s %s\n",
			s.Stage, curStages[s.Stage], fmtRate(s.Rate),
			fmtDur(s.P50), fmtDur(s.P99), fmtDur(s.P9999))
	}

	if len(feed.Plans) > 0 {
		b.WriteString("\nPLAN             PROC  PUSH/S     EMIT/S     SEL    P50        P99        QUERIES\n")
		for _, p := range feed.Plans {
			fmt.Fprintf(&b, "%-16s p%-4d %-10s %-10s %-6.2f %-10s %-10s %s\n",
				p.Plan, p.Proc, fmtRate(p.PushRate), fmtRate(p.EmitRate),
				p.Selectivity, fmtDur(p.PushP50), fmtDur(p.PushP99),
				strings.Join(p.Queries, " "))
		}
	}

	if len(cur.Workers) > 0 {
		b.WriteString("\nWORKERS  ")
		for _, w := range cur.Workers {
			fmt.Fprintf(&b, " p%d/w%d q=%d/%d", w.Proc, w.Worker, w.QueueDepth, w.QueueCap)
		}
		b.WriteByte('\n')
	}
	if len(cur.BrokerQueues) > 0 {
		backlog, busiest := 0, 0
		for n, d := range cur.BrokerQueues {
			backlog += d
			if d > cur.BrokerQueues[busiest] {
				busiest = n
			}
		}
		fmt.Fprintf(&b, "BROKERS   backlog=%d (max node %d: %d)\n",
			backlog, busiest, cur.BrokerQueues[busiest])
	}
	if cur.Wire != nil {
		fmt.Fprintf(&b, "WIRE      conns=%d results=%d batches=%d bytes=%d queued=%d\n",
			cur.Wire.Connections, cur.Wire.Results, cur.Wire.Batches,
			cur.Wire.Bytes, cur.Wire.QueueDepth)
	}

	links := busiestLinks(feed.Links, nlinks)
	if len(links) > 0 {
		b.WriteString("\nLINK     BYTES/S    MSGS/S     DELAY\n")
		for _, l := range links {
			fmt.Fprintf(&b, "%3d-%-4d %-10s %-10s %.1fms\n",
				l.A, l.B, fmtRate(l.DataBytesPerSec), fmtRate(l.DataMsgsPerSec), l.DelayMs)
		}
	}
	fmt.Print(b.String())
}

// busiestLinks keeps the n links with the highest observed bandwidth
// this window, dropping idle ones.
func busiestLinks(links []cost.LinkFeed, n int) []cost.LinkFeed {
	busy := make([]cost.LinkFeed, 0, len(links))
	for _, l := range links {
		if l.DataBytesPerSec > 0 || l.DataMsgsPerSec > 0 {
			busy = append(busy, l)
		}
	}
	sort.SliceStable(busy, func(i, j int) bool {
		return busy[i].DataBytesPerSec > busy[j].DataBytesPerSec
	})
	if len(busy) > n {
		busy = busy[:n]
	}
	return busy
}

func fmtRate(r float64) string {
	switch {
	case r == 0:
		return "0"
	case r >= 1e6:
		return fmt.Sprintf("%.2fM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk/s", r/1e3)
	case r >= 10:
		return fmt.Sprintf("%.0f/s", r)
	default:
		return fmt.Sprintf("%.1f/s", r)
	}
}

// fmtDur renders a latency with magnitude-appropriate rounding; "-"
// marks an empty histogram (nothing sampled yet).
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < 10*time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	case d < 10*time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Microsecond).String()
	}
}
