package cosmos_test

import (
	"strings"
	"testing"

	"cosmos"
)

func TestExplain(t *testing.T) {
	info, err := cosmos.Explain(
		"SELECT O.itemID, AVG(O.price) AS avgp FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C " +
			"WHERE O.itemID = C.itemID AND O.price > 100 GROUP BY O.itemID")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Streams) != 2 {
		t.Fatalf("streams = %v", info.Streams)
	}
	if info.Streams[0].Stream != "OpenAuction" || info.Streams[0].Alias != "O" ||
		info.Streams[0].Window != 3*cosmos.Hour {
		t.Errorf("stream[0] = %+v", info.Streams[0])
	}
	if info.Streams[1].Stream != "ClosedAuction" || info.Streams[1].Window != cosmos.Now {
		t.Errorf("stream[1] = %+v", info.Streams[1])
	}
	if !info.Aggregate {
		t.Error("aggregate not detected")
	}
	if len(info.Select) != 2 || info.Select[1] != "AVG(O.price) AS avgp" {
		t.Errorf("select = %v", info.Select)
	}
	if len(info.GroupBy) != 1 || info.GroupBy[0] != "O.itemID" {
		t.Errorf("groupBy = %v", info.GroupBy)
	}
	if info.Where == "" || !strings.Contains(info.Where, "O.itemID = C.itemID") {
		t.Errorf("where = %q", info.Where)
	}
	out := info.String()
	for _, want := range []string{
		"OpenAuction [Range 3 Hour] O",
		"ClosedAuction [Now]",
		"windowed aggregate",
		"O.price > 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering misses %q:\n%s", want, out)
		}
	}
}

func TestExplainKinds(t *testing.T) {
	cases := []struct{ cql, kind string }{
		{"SELECT a FROM S [Now] WHERE a > 1", "select-project filter"},
		{"SELECT R.a, T.b FROM R [Now], T [Now] WHERE R.a = T.a", "window join"},
		{"SELECT COUNT(*) FROM S [Range 5 Minute]", "windowed aggregate"},
	}
	for _, c := range cases {
		info, err := cosmos.Explain(c.cql)
		if err != nil {
			t.Fatalf("%q: %v", c.cql, err)
		}
		if !strings.Contains(info.String(), c.kind) {
			t.Errorf("%q: kind %q missing in:\n%s", c.cql, c.kind, info)
		}
	}
}

func TestExplainRejectsBadQuery(t *testing.T) {
	if _, err := cosmos.Explain("SELECT FROM"); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := cosmos.Explain(""); err == nil {
		t.Error("empty query accepted")
	}
}
