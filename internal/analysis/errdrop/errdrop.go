// Package errdrop flags silently discarded error returns. On the data
// path a dropped error is a dropped tuple with no trace; the repo's
// convention is that every error is either handled, propagated, or
// explicitly discarded with `_ =` (which documents the decision and
// survives refactors that add return values).
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"cosmos/internal/analysis/framework"
)

// Analyzer reports expression-statement calls whose result set includes
// an error that nothing consumes. Deliberate discards are written
// `_ = f()` (single error result) or suppressed with a documented
// `//lint:ignore errdrop <reason>`. Deferred calls are exempt — Go
// offers no ergonomic way to consume a deferred call's error, and the
// repo's deferred Close/Unlock cleanups are best-effort by design.
var Analyzer = &framework.Analyzer{
	Name: "errdrop",
	Doc:  "flag call statements that silently discard an error result",
	Run:  run,
}

// ScopePrefixes, when non-empty, restricts the check to packages whose
// import path starts with one of the prefixes. The cosmoslint driver
// sets it to the data-path packages; nil (the default, used by the
// tests) checks every package the analyzer is run over.
var ScopePrefixes []string

func inScope(pkgPath string) bool {
	if len(ScopePrefixes) == 0 {
		return true
	}
	for _, p := range ScopePrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := framework.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, drops := dropsError(pass.TypesInfo, call); drops {
				pass.Reportf(call.Pos(),
					"%s returns an error that is silently dropped; handle it or discard explicitly with _ =",
					name)
			}
			return true
		})
	}
	return nil
}

// dropsError reports whether the call's results include an error, with
// a printable callee name for the diagnostic.
func dropsError(info *types.Info, call *ast.CallExpr) (string, bool) {
	if framework.IsConversion(info, call) {
		return "", false
	}
	tv, ok := info.Types[call]
	if !ok {
		return "", false
	}
	hasErr := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				hasErr = true
			}
		}
	default:
		hasErr = isErrorType(tv.Type)
	}
	if !hasErr {
		return "", false
	}
	name := "call"
	switch obj := framework.Callee(info, call).(type) {
	case *types.Func:
		if isInfallibleWriter(info, call, obj) {
			return "", false
		}
		name = obj.FullName()
	case *types.Var:
		name = obj.Name()
	case *types.Builtin:
		return "", false
	}
	return name, true
}

// isInfallibleWriter reports whether the call's error result is nil by
// documented contract: methods of strings.Builder and bytes.Buffer
// ("Write... always returns a nil error"), and fmt.Fprint* variants
// whose destination is one of those two. They keep the error in their
// signature only to satisfy io.Writer; requiring `_ =` on them would
// teach people to type it reflexively, which defeats the check.
func isInfallibleWriter(info *types.Info, call *ast.CallExpr, callee *types.Func) bool {
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if isBuilderOrBuffer(sig.Recv().Type()) {
			return true
		}
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		strings.HasPrefix(callee.Name(), "Fprint") && len(call.Args) > 0 {
		return isBuilderOrBuffer(info.TypeOf(call.Args[0]))
	}
	return false
}

func isBuilderOrBuffer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
