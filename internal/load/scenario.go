package load

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
	"cosmos/internal/transport"
)

// loadSchema is the harness's generic source schema: a sequence number
// for loss/duplication accounting, the intended publish offset in
// nanoseconds for coordinated-omission-safe latency, and three float
// payload columns so per-tuple wire and eval cost stays comparable to
// the sensor workloads (5 columns, like sensordata.Schema).
func loadSchema(name string) *stream.Schema {
	return stream.MustSchema(name,
		stream.Field{Name: "seq", Kind: stream.KindInt},
		stream.Field{Name: "pubns", Kind: stream.KindInt},
		stream.Field{Name: "v0", Kind: stream.KindFloat},
		stream.Field{Name: "v1", Kind: stream.KindFloat},
		stream.Field{Name: "v2", Kind: stream.KindFloat},
	)
}

// loadInfo is the catalog record for a harness stream.
func loadInfo(name string, rate int) *stream.Info {
	return &stream.Info{
		Schema: loadSchema(name),
		Rate:   float64(rate),
		Stats: map[string]stream.AttrStats{
			"seq":   {Min: 0, Max: 1e12, Distinct: 1e9},
			"pubns": {Min: 0, Max: 1e15, Distinct: 1e9},
			"v0":    {Min: 0, Max: 100, Distinct: 1000},
			"v1":    {Min: 0, Max: 100, Distinct: 1000},
			"v2":    {Min: 0, Max: 100, Distinct: 1000},
		},
	}
}

// loadTuple builds one harness tuple: Ts carries the actual publish
// offset in nanoseconds (monotonic application time, and the service-
// latency stamp — the pre-harness bench's Ts convention), pubns the
// intended publish offset.
func loadTuple(s *stream.Schema, seq int64, pub, act time.Duration) stream.Tuple {
	return stream.MustTuple(s, stream.Timestamp(act),
		stream.Int(seq), stream.Int(int64(pub)),
		stream.Float(float64(seq%100)), stream.Float(50), stream.Float(25))
}

// loadQuery is the pass-through continuous query over a harness
// stream: results carry exactly the accounting columns.
func loadQuery(streamName string) string {
	return fmt.Sprintf("SELECT seq, pubns FROM %s [Now]", streamName)
}

// resultIndex resolves an accounting column in a result schema. Result
// streams of joined queries qualify columns by source stream
// ("ClosedAuctionL.seq"); single-stream selections keep them bare.
func resultIndex(s *stream.Schema, attr string) (int, error) {
	if i := s.ColIndex(attr); i >= 0 {
		return i, nil
	}
	for i, f := range s.Fields {
		if strings.HasSuffix(f.Name, "."+attr) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("load: result schema %s carries no %q column", s.Stream, attr)
}

// seqPub extracts the accounting pair from a result tuple, resolving
// the column indices on first use (schemas are stable per query).
type seqPub struct {
	schema *stream.Schema
	seqIdx int
	pubIdx int
}

func (x *seqPub) extract(t stream.Tuple) (seq, pub int64, err error) {
	if t.Schema != x.schema {
		si, err := resultIndex(t.Schema, "seq")
		if err != nil {
			return 0, 0, err
		}
		pi, err := resultIndex(t.Schema, "pubns")
		if err != nil {
			return 0, 0, err
		}
		x.schema, x.seqIdx, x.pubIdx = t.Schema, si, pi
	}
	return t.Values[x.seqIdx].AsInt(), t.Values[x.pubIdx].AsInt(), nil
}

// memProbe measures allocations across the run via MemStats deltas.
type memProbe struct{ before runtime.MemStats }

func (m *memProbe) start() { runtime.ReadMemStats(&m.before) }

func (m *memProbe) allocsPer(results int64) float64 {
	if results <= 0 {
		return 0
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-m.before.Mallocs) / float64(results)
}

// waitUntil polls cond until it holds or the deadline passes; reports
// whether it held.
func waitUntil(deadline time.Time, cond func() bool) bool {
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// liveDeployment is one in-process daemon assembly: a LiveSystem,
// optionally behind a TCP transport.Server.
type liveDeployment struct {
	ls      *core.LiveSystem
	srv     *transport.Server
	addr    string
	cleanup []func()
}

func (d *liveDeployment) close() {
	for i := len(d.cleanup) - 1; i >= 0; i-- {
		d.cleanup[i]()
	}
}

// startLive assembles a LiveSystem from opts; withServer additionally
// serves it on a loopback TCP listener.
func startLive(opts core.Options, withServer bool) (*liveDeployment, error) {
	ls, err := core.NewLiveSystem(opts)
	if err != nil {
		return nil, err
	}
	d := &liveDeployment{ls: ls}
	if !withServer {
		d.cleanup = append(d.cleanup, ls.Close)
		return d, nil
	}
	srv := transport.NewServer(ls.System, transport.WithSystemClose(ls.Close))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ls.Close()
		return nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	d.srv = srv
	d.addr = ln.Addr().String()
	d.cleanup = append(d.cleanup, func() {
		srv.Close()
		<-errc
	})
	return d, nil
}

// baseResults assembles the rate/latency half of a Results block from
// the run's pacer and recorder: pubElapsed is the publishing phase
// (achieved offered rate is published/pubElapsed), total includes the
// drain. Scenario runners fill the ledger totals and allocation
// figures around it.
func baseResults(p *Pacer, rec *Recorder, pubElapsed, total time.Duration) Results {
	published := p.Ticks()
	delivered := rec.Delivered()
	res := Results{
		Published:     published,
		Delivered:     delivered,
		OfferedPerSec: p.Offered(),
		ElapsedS:      total.Seconds(),
		LatencyUs:     summarize(rec.LatencySnapshot()),
		SchedLagUs:    summarize(p.LagSnapshot()),
	}
	if svc := rec.SvcSnapshot(); svc.Count > 0 {
		s := summarize(svc)
		res.SvcLatencyUs = &s
	}
	if pubElapsed > 0 {
		res.AchievedPerSec = float64(published) / pubElapsed.Seconds()
	}
	if total > 0 {
		res.DeliveredPerSec = float64(delivered) / total.Seconds()
	}
	if delivered > 0 {
		res.NsPerResult = float64(total.Nanoseconds()) / float64(delivered)
	}
	return res
}
