package cosmos

import (
	"context"
	"fmt"
	"sync"

	"cosmos/internal/core"
)

// Embed returns a Client session over an in-process synchronous System
// (SimNet): deterministic, single-threaded, the differential reference
// for the other backends. The caller keeps ownership of the system;
// Close tears down only this client's subscriptions.
//
// The synchronous network imposes single-caller discipline, so this
// backend serialises the session's operations (Publish, Submit, Cancel,
// context-driven teardown, Quiesce) behind one lock — the Client
// contract's concurrent-use safety holds, at the cost of publishing
// throughput the deterministic transport never had anyway. Direct use
// of the underlying System alongside a concurrently-used session is not
// serialised.
func Embed(sys *System) Client {
	return &embeddedClient{sys: sys, sync: true, subs: map[*Subscription]*core.QueryHandle{}}
}

// EmbedLive returns a Client session over an in-process LiveSystem
// (LiveNet): results reach subscriptions while ingest continues, with
// the per-worker direct-publish data path beneath. The caller keeps
// ownership of the system — Close tears down this client's
// subscriptions, not the deployment (call LiveSystem.Close for that).
func EmbedLive(ls *LiveSystem) Client {
	return &embeddedClient{sys: ls.System, subs: map[*Subscription]*core.QueryHandle{}}
}

// embeddedClient implements Client directly over core.System — one
// implementation for both in-process transports, since LiveSystem is a
// System deployed over the concurrent network.
type embeddedClient struct {
	sys *System
	// sync marks the SimNet backend; session operations then serialise
	// on opMu to honour the single-threaded network's single-caller
	// discipline (a context watcher cancelling mid-Publish would
	// otherwise race the synchronous routing cascade).
	sync bool
	opMu sync.Mutex

	mu     sync.Mutex
	subs   map[*Subscription]*core.QueryHandle
	closed bool
}

// lock serialises one session operation on the synchronous backend; a
// no-op (nil unlock) on the live backend, whose system is thread-safe.
func (c *embeddedClient) lock() func() {
	if !c.sync {
		return func() {}
	}
	c.opMu.Lock()
	return c.opMu.Unlock
}

// embeddedSource wraps a source port into the session: publishes stop
// once the client closes (matching the remote backend), and on the
// synchronous backend they serialise with the session's other
// operations.
type embeddedSource struct {
	c    *embeddedClient
	port *core.SourcePort
}

func (s embeddedSource) Stream() string  { return s.port.Stream() }
func (s embeddedSource) Schema() *Schema { return s.port.Schema() }
func (s embeddedSource) Publish(t Tuple) error {
	s.c.mu.Lock()
	closed := s.c.closed
	s.c.mu.Unlock()
	if closed {
		return fmt.Errorf("cosmos: client closed")
	}
	defer s.c.lock()()
	return s.port.Publish(t)
}

func (c *embeddedClient) RegisterStream(info *StreamInfo, node int) (Source, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("cosmos: client closed")
	}
	defer c.lock()()
	port, err := c.sys.RegisterStream(info, node)
	if err != nil {
		return nil, err
	}
	return embeddedSource{c: c, port: port}, nil
}

func (c *embeddedClient) Source(name string) (Source, error) {
	port, ok := c.sys.Source(name)
	if !ok {
		return nil, fmt.Errorf("cosmos: stream %q not registered", name)
	}
	return embeddedSource{c: c, port: port}, nil
}

func (c *embeddedClient) Submit(ctx context.Context, cql string, userNode int) (*Subscription, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("cosmos: client closed")
	}
	sub := newSubscription()
	unlock := c.lock()
	h, err := c.sys.Submit(cql, userNode, sub.push)
	unlock()
	if err != nil {
		sub.end(err)
		return nil, err
	}
	sub.setTag(h.Tag)
	sub.cancel = func() error { return c.remove(sub, true) }
	c.mu.Lock()
	if c.closed {
		// Lost the race with Close: undo immediately.
		c.mu.Unlock()
		c.cancelInSystem(h)
		sub.end(nil)
		return nil, fmt.Errorf("cosmos: client closed")
	}
	c.subs[sub] = h
	c.mu.Unlock()
	sub.watchContext(ctx)
	return sub, nil
}

// remove detaches one subscription from the system; inSystem guards the
// double-cancel race between Subscription.Cancel and Close.
func (c *embeddedClient) remove(sub *Subscription, inSystem bool) error {
	c.mu.Lock()
	h, ok := c.subs[sub]
	delete(c.subs, sub)
	c.mu.Unlock()
	if !ok || !inSystem {
		return nil
	}
	return c.cancelInSystem(h)
}

func (c *embeddedClient) cancelInSystem(h *core.QueryHandle) error {
	defer c.lock()()
	return c.sys.Cancel(h)
}

func (c *embeddedClient) Catalog() ([]*StreamInfo, error) {
	reg := c.sys.Catalog()
	var infos []*StreamInfo
	for _, name := range reg.Names() {
		if info, ok := reg.Lookup(name); ok {
			infos = append(infos, info)
		}
	}
	return infos, nil
}

func (c *embeddedClient) Stats() (SystemStats, error) {
	defer c.lock()()
	return c.sys.StatsSnapshot(), nil
}

func (c *embeddedClient) Quiesce() error {
	defer c.lock()()
	c.sys.Quiesce()
	return nil
}

func (c *embeddedClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	subs := c.subs
	c.subs = map[*Subscription]*core.QueryHandle{}
	c.mu.Unlock()
	for sub, h := range subs {
		_ = c.cancelInSystem(h)
		sub.end(nil)
	}
	return nil
}
