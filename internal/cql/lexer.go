// Package cql implements the SQL-like continuous query language COSMOS
// accepts (paper §2: "User queries submitted to the system are specified
// in high level SQL-like language statements such as CQL").
//
// The supported subset covers the paper's workload: select-project-join
// queries with CQL time-based sliding windows ([Now], [Range n unit],
// [Unbounded]) and windowed grouped aggregation:
//
//	SELECT O.*, C.buyerID, C.timestamp
//	FROM   OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C
//	WHERE  O.itemID = C.itemID AND O.start_price > 10
//
//	SELECT station, AVG(temperature) FROM Sensor3 [Range 30 Minute]
//	GROUP BY station
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token categories.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokStar
	tokMinus
	tokCmp // = != <> < <= > >=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokStar:
		return "'*'"
	case tokMinus:
		return "'-'"
	case tokCmp:
		return "comparison operator"
	default:
		return "?"
	}
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer scans a CQL statement into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises the whole input up front; CQL statements are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case c == ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case c == '=':
		l.pos++
		return token{tokCmp, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokCmp, "!=", start}, nil
		}
		return token{}, fmt.Errorf("cql: unexpected '!' at offset %d", start)
	case c == '<':
		if l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '=':
				l.pos += 2
				return token{tokCmp, "<=", start}, nil
			case '>':
				l.pos += 2
				return token{tokCmp, "!=", start}, nil
			}
		}
		l.pos++
		return token{tokCmp, "<", start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokCmp, ">=", start}, nil
		}
		l.pos++
		return token{tokCmp, ">", start}, nil
	case c == '\'':
		return l.lexString()
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	default:
		return token{}, fmt.Errorf("cql: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
		l.pos++
	}
	return token{tokIdent, l.src[start:l.pos], start}, nil
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{tokString, b.String(), start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("cql: unterminated string starting at offset %d", start)
}
