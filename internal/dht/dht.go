// Package dht implements the Chord-style distributed hash table COSMOS
// uses to store stream schema information when the number of streams is
// too large to flood (paper §3: "we use a DHT architecture to store the
// schema information while using the unique stream name as the hashing
// key"). Flooding remains the small-catalogue alternative (the local
// stream.Registry replicated everywhere).
//
// The ring is simulated in-process: nodes are identified by the FNV-64
// hash of their names, keys by the hash of the stream name, and lookups
// route greedily through per-node finger tables, counting hops. Nodes
// may join and leave at any time ("these servers are autonomous and may
// join or leave the system anytime", §1); stored records are replicated
// on the ReplicationFactor successors so departures lose nothing.
package dht

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"cosmos/internal/stream"
)

// ReplicationFactor is the number of successive nodes holding each record.
const ReplicationFactor = 2

// fingerBits is the identifier-space width (and finger table size).
const fingerBits = 64

// HashKey maps a name onto the identifier ring.
func HashKey(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Node is one DHT participant.
type Node struct {
	ID   uint64
	Name string

	data    map[string]*stream.Info
	fingers []*Node // fingers[i] = successor(ID + 2^i)
}

// Ring is the simulated DHT.
type Ring struct {
	mu    sync.RWMutex
	nodes []*Node // sorted by ID
}

// New creates an empty ring.
func New() *Ring { return &Ring{} }

// Size returns the number of nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Join adds a node and rebalances: keys now owned by the new node move to
// it, and finger tables are rebuilt.
func (r *Ring) Join(name string) (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := HashKey(name)
	for _, n := range r.nodes {
		if n.ID == id {
			return nil, fmt.Errorf("dht: node id collision for %q", name)
		}
	}
	node := &Node{ID: id, Name: name, data: map[string]*stream.Info{}}
	r.nodes = append(r.nodes, node)
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].ID < r.nodes[j].ID })
	r.rebuildFingers()
	r.rereplicate()
	return node, nil
}

// Leave removes a node; its records survive on replicas and are
// re-replicated to restore the replication factor.
func (r *Ring) Leave(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := HashKey(name)
	idx := -1
	for i, n := range r.nodes {
		if n.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("dht: unknown node %q", name)
	}
	r.nodes = append(r.nodes[:idx], r.nodes[idx+1:]...)
	if len(r.nodes) == 0 {
		return nil
	}
	r.rebuildFingers()
	r.rereplicate()
	return nil
}

// successorLocked returns the first node with ID >= key (wrapping).
func (r *Ring) successorLocked(key uint64) *Node {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= key })
	if i == len(r.nodes) {
		i = 0
	}
	return r.nodes[i]
}

// replicasLocked lists the ReplicationFactor nodes responsible for key.
func (r *Ring) replicasLocked(key uint64) []*Node {
	if len(r.nodes) == 0 {
		return nil
	}
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= key })
	if i == len(r.nodes) {
		i = 0
	}
	count := ReplicationFactor
	if count > len(r.nodes) {
		count = len(r.nodes)
	}
	out := make([]*Node, 0, count)
	for k := 0; k < count; k++ {
		out = append(out, r.nodes[(i+k)%len(r.nodes)])
	}
	return out
}

// rebuildFingers recomputes every node's finger table. O(n·64·log n);
// this simulation favours clarity over incremental maintenance.
func (r *Ring) rebuildFingers() {
	for _, n := range r.nodes {
		n.fingers = make([]*Node, fingerBits)
		for b := 0; b < fingerBits; b++ {
			target := n.ID + (uint64(1) << uint(b)) // wraps mod 2^64
			n.fingers[b] = r.successorLocked(target)
		}
	}
}

// rereplicate re-asserts that every record lives on its current replica
// set (called after membership changes).
func (r *Ring) rereplicate() {
	type kv struct {
		key  string
		info *stream.Info
	}
	var all []kv
	seen := map[string]bool{}
	for _, n := range r.nodes {
		for k, v := range n.data {
			if !seen[k] {
				seen[k] = true
				all = append(all, kv{k, v})
			}
		}
	}
	for _, n := range r.nodes {
		n.data = map[string]*stream.Info{}
	}
	for _, item := range all {
		for _, n := range r.replicasLocked(HashKey(item.key)) {
			n.data[item.key] = item.info
		}
	}
}

// route walks finger tables from a start node toward the successor of
// key, returning the responsible node and the hop count. This mirrors
// Chord's greedy closest-preceding-finger routing.
func (r *Ring) route(from *Node, key uint64) (*Node, int) {
	target := r.successorLocked(key)
	cur := from
	hops := 0
	for cur != target {
		// Choose the farthest finger that does not overshoot the target
		// (clockwise distance check in modular arithmetic).
		next := cur.fingers[0] // immediate successor as fallback
		bestAdvance := uint64(0)
		for _, f := range cur.fingers {
			if f == cur {
				continue
			}
			adv := f.ID - cur.ID // modular distance
			if adv <= bestAdvance {
				continue
			}
			if clockwiseBetween(cur.ID, f.ID, target.ID) || f == target {
				bestAdvance = adv
				next = f
			}
		}
		if next == cur {
			break // singleton ring
		}
		cur = next
		hops++
		if hops > len(r.nodes)+fingerBits {
			break // safety net; cannot happen on a consistent ring
		}
	}
	return target, hops
}

// clockwiseBetween reports whether x lies on the clockwise arc (a, b].
func clockwiseBetween(a, x, b uint64) bool {
	if a == b {
		return true
	}
	return (x - a) <= (b - a) // modular arithmetic does the wrapping
}

// Store places a record on the replica set of its key, returning the
// primary node and the routing hop count from the given origin node.
func (r *Ring) Store(origin string, key string, info *stream.Info) (*Node, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.nodes) == 0 {
		return nil, 0, fmt.Errorf("dht: empty ring")
	}
	from, err := r.nodeLocked(origin)
	if err != nil {
		return nil, 0, err
	}
	primary, hops := r.route(from, HashKey(key))
	for _, n := range r.replicasLocked(HashKey(key)) {
		n.data[key] = info
	}
	return primary, hops, nil
}

// Get routes from the origin node to the key's owner and returns the
// record plus the hop count.
func (r *Ring) Get(origin string, key string) (*stream.Info, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return nil, 0, fmt.Errorf("dht: empty ring")
	}
	from, err := r.nodeLocked(origin)
	if err != nil {
		return nil, 0, err
	}
	owner, hops := r.route(from, HashKey(key))
	info, ok := owner.data[key]
	if !ok {
		return nil, hops, fmt.Errorf("dht: key %q not found", key)
	}
	return info, hops, nil
}

func (r *Ring) nodeLocked(name string) (*Node, error) {
	id := HashKey(name)
	for _, n := range r.nodes {
		if n.ID == id {
			return n, nil
		}
	}
	return nil, fmt.Errorf("dht: unknown origin node %q", name)
}

// Owner returns the primary node currently responsible for a key.
func (r *Ring) Owner(key string) (*Node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return nil, fmt.Errorf("dht: empty ring")
	}
	return r.successorLocked(HashKey(key)), nil
}

// Keys lists every stored key (deduplicated across replicas), sorted.
func (r *Ring) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	for _, n := range r.nodes {
		for k := range n.data {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
