package core

import (
	"fmt"
	"math/rand"
	"sync"

	"cosmos/internal/cbn"
	"cosmos/internal/cql"
	"cosmos/internal/merge"
	"cosmos/internal/obs"
	"cosmos/internal/overlay"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

// Options configures a System.
type Options struct {
	// Nodes is the overlay size (default 64).
	Nodes int
	// EdgesPerNode is the power-law attachment parameter (default 2).
	EdgesPerNode int
	// Seed drives topology and placement randomness (deterministic).
	Seed int64
	// ProcessorNodes places processors explicitly; when empty,
	// Processors (default 1) nodes are drawn at random.
	ProcessorNodes []int
	Processors     int
	// Mode selects representative-predicate composition.
	Mode merge.Mode
	// MaxCandidates bounds the merging optimiser's candidate scan.
	MaxCandidates int
	// Placement selects the query-distribution policy.
	Placement PlacementPolicy
	// Tree overrides topology generation with an explicit dissemination
	// tree (Nodes/EdgesPerNode are then ignored). Used by experiments
	// that need an exact overlay shape, e.g. Figure 3.
	Tree *overlay.Tree
	// DisableMerging turns the query-merging optimiser off: every query
	// forms its own group (the "Non-Share" baseline of Figure 3).
	DisableMerging bool
	// CheckpointEvery captures plan state every N consumed tuples per
	// processor for query-layer fault tolerance; 0 disables periodic
	// checkpoints (FailProcessor then restarts plans cold).
	CheckpointEvery int
	// ExecWorkers sets each processor's execution-runtime worker-pool
	// size. 0 (default) runs plans synchronously on the data-delivery
	// goroutine — deterministic, as the synchronous simulated network
	// expects. > 0 runs the sharded runtime: delivery enqueues into a
	// micro-batching ingest queue and plans execute on the pool. What
	// happens to results then depends on the transport: on the simulated
	// network they buffer until System.Quiesce flushes them into the
	// single-threaded data layer, while a LiveSystem's workers publish
	// them straight into the concurrent network with no barrier on the
	// data path. Per-plan (hence per-query) result order is preserved
	// either way; cross-query interleaving is not.
	ExecWorkers int
	// IngestBatch bounds the ingest micro-batch when ExecWorkers > 0
	// (default 16).
	IngestBatch int
	// OnPlanError observes plan execution failures (schema drift between
	// the data layer and an installed plan); may be nil, and must be safe
	// for concurrent use when ExecWorkers > 0. Each processor also counts
	// them (Processor.PlanErrors).
	OnPlanError func(procID int, planID string, err error)
	// Obs configures the observability plane shared by every component
	// of the system (stage counters, sampled latency histograms, tuple
	// tracing). The zero value means always-on counters, default latency
	// sampling (obs.DefaultSampleEvery), tracing off.
	Obs obs.Options
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 64
	}
	if o.EdgesPerNode == 0 {
		o.EdgesPerNode = 2
	}
	if o.Processors == 0 {
		o.Processors = 1
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 64
	}
	return o
}

// System is an in-process COSMOS deployment. The data layer is either
// the deterministic single-threaded SimNet (NewSystem) or the concurrent
// LiveNet (NewLiveSystem); all query management, distribution, merging
// and delivery components are shared between the two transports.
type System struct {
	mu   sync.Mutex
	opts Options
	reg  *stream.Registry
	topo *topology.Graph
	tree *overlay.Tree
	net  transport
	sim  *cbn.SimNet  // non-nil for the simulated transport
	live *cbn.LiveNet // non-nil for the concurrent transport
	obs  *obs.Metrics // the system-wide observability hub, never nil
	rng  *rand.Rand

	procs   []*Processor
	sources map[string]*SourcePort  // guarded by mu
	queries map[string]*QueryHandle // guarded by mu
	nextQID int                     // guarded by mu
}

// NewSystem builds the overlay (power-law topology, MST dissemination
// tree), the simulated CBN, and the processors. The result is
// deterministic and single-threaded — the differential reference for
// LiveSystem.
func NewSystem(opts Options) (*System, error) {
	return newSystem(opts, false)
}

func newSystem(opts Options, live bool) (*System, error) {
	opts = opts.withDefaults()
	var tree *overlay.Tree
	var g *topology.Graph // nil when an explicit tree is supplied
	if opts.Tree != nil {
		tree = opts.Tree
		opts.Nodes = tree.NumNodes()
	} else {
		var err error
		g, err = topology.GeneratePowerLaw(opts.Nodes, opts.EdgesPerNode, opts.Seed)
		if err != nil {
			return nil, err
		}
		tree, err = overlay.MST(g, 0)
		if err != nil {
			return nil, err
		}
	}
	s := &System{
		opts:    opts,
		reg:     stream.NewRegistry(),
		topo:    g,
		tree:    tree,
		obs:     obs.New(opts.Obs),
		rng:     rand.New(rand.NewSource(opts.Seed + 17)),
		sources: map[string]*SourcePort{},
		queries: map[string]*QueryHandle{},
	}
	if live {
		s.live = cbn.NewLiveNetFromTree(tree)
		s.live.SetMetrics(s.obs)
		s.net = liveTransport{s.live}
	} else {
		s.sim = cbn.NewSimNetFromTree(tree)
		s.sim.SetMetrics(s.obs)
		s.net = simTransport{s.sim}
	}
	nodes := opts.ProcessorNodes
	if len(nodes) == 0 {
		for i := 0; i < opts.Processors; i++ {
			nodes = append(nodes, s.rng.Intn(opts.Nodes))
		}
	}
	fail := func(err error) (*System, error) {
		// Release what partial assembly started (client pumps, runtimes).
		for _, p := range s.procs {
			p.shutdownExec()
		}
		if s.live != nil {
			s.live.Stop()
		}
		return nil, err
	}
	for i, node := range nodes {
		if node < 0 || node >= opts.Nodes {
			return fail(fmt.Errorf("core: processor node %d out of range", node))
		}
		p, err := newProcessor(s, i, node)
		if err != nil {
			return fail(err)
		}
		s.procs = append(s.procs, p)
	}
	if s.live != nil {
		s.live.Start()
	}
	return s, nil
}

// Catalog exposes the flooded schema registry.
func (s *System) Catalog() *stream.Registry { return s.reg }

// Live reports whether the system is deployed over the concurrent
// transport. A false return means the single-threaded SimNet carries
// the data: callers driving the system from multiple goroutines (e.g.
// the TCP server's connection handlers) must serialise Publish/Submit/
// Cancel/Quiesce themselves.
func (s *System) Live() bool { return s.live != nil }

// Tree exposes the dissemination tree (for inspection and examples).
func (s *System) Tree() *overlay.Tree { return s.tree }

// Processors lists the system's processors.
func (s *System) Processors() []*Processor { return s.procs }

// Obs exposes the system's observability hub (never nil): stage
// counters, sampled latency histograms and — when Options.Obs enabled
// it — the retained tuple traces.
func (s *System) Obs() *obs.Metrics { return s.obs }

// SourcePort publishes one source stream into the data layer.
type SourcePort struct {
	Node   int
	info   *stream.Info
	client netClient
	obs    *obs.Metrics
	// errWrongStream is the rejection error for foreign tuples,
	// precomputed so the Publish fast path never formats.
	errWrongStream error
}

// Stream returns the name of the stream this port publishes.
func (p *SourcePort) Stream() string { return p.info.Schema.Stream }

// Schema returns the schema of the stream this port publishes.
func (p *SourcePort) Schema() *stream.Schema { return p.info.Schema }

// RegisterStream attaches a data source at a node: the schema is flooded
// into the catalog and the stream advertised through the CBN.
func (s *System) RegisterStream(info *stream.Info, node int) (*SourcePort, error) {
	if node < 0 || node >= s.opts.Nodes {
		return nil, fmt.Errorf("core: source node %d out of range", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	name := info.Schema.Stream
	if _, dup := s.sources[name]; dup {
		return nil, fmt.Errorf("core: stream %q already registered", name)
	}
	if err := s.reg.Register(info); err != nil {
		return nil, err
	}
	client, err := s.net.AttachClient(node)
	if err != nil {
		return nil, err
	}
	port := &SourcePort{
		Node:           node,
		info:           info,
		client:         client,
		obs:            s.obs,
		errWrongStream: fmt.Errorf("core: tuple is not of stream %q", name),
	}
	port.client.Advertise(name)
	s.sources[name] = port
	return port, nil
}

// Source returns the port of a registered source stream; sources stay
// registered for the system's lifetime, so the port is valid until then.
func (s *System) Source(name string) (*SourcePort, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.sources[name]
	return p, ok
}

// Publish injects one tuple of the port's stream.
//
//cosmos:hotpath
func (p *SourcePort) Publish(t stream.Tuple) error {
	if t.Schema == nil || t.Schema.Stream != p.info.Schema.Stream {
		return p.errWrongStream
	}
	// Ingest is the head of the data path: the trace sampler decides
	// here whether this tuple is followed, and the stage timing covers
	// the hand-off into the network client (on the live transport that
	// includes the ingress-credit wait — the backpressure signal).
	p.obs.TraceSample(int64(t.Ts), t.Schema.Stream)
	// Sources publish concurrently: stripe the count by attachment node.
	start := p.obs.StageStartAt(obs.StageIngest, p.Node)
	err := p.client.Publish(t)
	p.obs.StageEnd(obs.StageIngest, start)
	return err
}

// Submit registers a continuous query on behalf of a user attached at
// userNode. Results arrive on onResult with the query's own output
// schema (stream name = the returned handle's tag). The query is routed
// to a processor by the distribution policy, merged into a query group
// when beneficial, and its results re-tightened from the group's
// representative stream.
func (s *System) Submit(text string, userNode int, onResult func(stream.Tuple)) (*QueryHandle, error) {
	if userNode < 0 || userNode >= s.opts.Nodes {
		return nil, fmt.Errorf("core: user node %d out of range", userNode)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bound, err := cql.AnalyzeString(text, s.reg)
	if err != nil {
		return nil, err
	}
	tag := fmt.Sprintf("q%05d", s.nextQID)
	s.nextQID++

	proc := s.place(bound, userNode)
	if proc == nil {
		return nil, fmt.Errorf("core: no processor alive")
	}
	client, err := s.net.AttachClient(userNode)
	if err != nil {
		return nil, err
	}
	h := &QueryHandle{
		Tag:      tag,
		UserNode: userNode,
		sys:      s,
		proc:     proc,
		bound:    bound,
		onResult: onResult,
		client:   client,
	}
	h.client.SetOnTuple(h.deliver)
	s.queries[tag] = h

	gs, err := proc.accept(tag, bound)
	if err != nil {
		delete(s.queries, tag)
		h.client.Close()
		return nil, err
	}
	if err := s.refreshGroupLocked(proc, gs); err != nil {
		return nil, err
	}
	return h, nil
}

// refreshGroupLocked rebuilds delivery state for every member of a group
// after its representative (or result schema) changed.
func (s *System) refreshGroupLocked(proc *Processor, gs *groupState) error {
	singleton := len(gs.memberTags) == 1
	for _, tag := range gs.memberTags {
		h, ok := s.queries[tag]
		if !ok {
			continue
		}
		if err := h.refresh(gs.rep, gs.resultStream, singleton); err != nil {
			return fmt.Errorf("core: refreshing %s: %w", tag, err)
		}
	}
	return nil
}

// Cancel removes a query: the processor's group shrinks (or disappears)
// and the remaining members are refreshed.
func (s *System) Cancel(h *QueryHandle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queries[h.Tag]; !ok {
		return fmt.Errorf("core: unknown query %s", h.Tag)
	}
	delete(s.queries, h.Tag)
	h.detach()
	h.client.Close()
	gs, err := h.proc.remove(h.Tag)
	if err != nil {
		return err
	}
	if gs != nil {
		return s.refreshGroupLocked(h.proc, gs)
	}
	return nil
}

// Queries returns the number of live queries.
func (s *System) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

// InjectPlanPanic arms a one-shot panic in the plan executing the given
// query — the system-level entry of the exec runtime's fault-injection
// hook, for containment tests: the next tuple the plan processes makes
// it panic, which the runtime contains to that plan (surfaced as a
// PlanErrors increment on its processor) while every other plan, query
// and session keeps running. Reports whether the query (and its plan)
// was found alive. Note the plan may be shared: panicking it degrades
// every query merged into the same group.
func (s *System) InjectPlanPanic(tag string) bool {
	s.mu.Lock()
	h, ok := s.queries[tag]
	s.mu.Unlock()
	if !ok {
		return false
	}
	planID, ok := h.proc.planOf(tag)
	if !ok {
		return false
	}
	return h.proc.rt.InjectPanic(planID)
}

// Quiesce is the system-wide stabilisation barrier: it blocks until no
// tuple is in flight anywhere — ingest queues, worker pools, the
// network, delivery pumps. Call it when no source is concurrently
// publishing; it is meant for tests, checkpoint boundaries and
// experiment readouts, never for the steady-state data path (a
// LiveSystem delivers results continuously without it).
//
// On the simulated transport the network itself is synchronous, so the
// barrier reduces to draining the sharded processors and publishing
// their buffered results from the calling goroutine (results may feed
// other processors, so it loops until a full pass publishes nothing); a
// no-op for synchronous systems (ExecWorkers == 0). On the live
// transport results were already published by the workers, so the
// barrier just waits until the network and every runtime stop moving.
func (s *System) Quiesce() {
	if s.live != nil {
		s.liveQuiesce()
		return
	}
	for {
		progress := false
		for _, p := range s.procs {
			if p.quiesce() {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// liveQuiesce stabilises a live system: each pass drains every
// processor's ingest queue and worker pool (publishing any resulting
// emissions into the network) and then waits for the network to go
// idle. The system is stable when a full pass accepted no new network
// injection (the Injected count is unchanged) and every ingest queue is
// empty — at that point no tuple exists anywhere in the pipeline.
func (s *System) liveQuiesce() {
	prev := int64(-1)
	for {
		for _, p := range s.procs {
			p.drainExec()
		}
		s.live.Quiesce()
		cur := s.live.Injected()
		if cur == prev && s.procsIdle() {
			return
		}
		prev = cur
	}
}

// procsIdle reports whether every live processor's ingest queue is
// empty. Crashed processors are skipped: their batchers dropped queued
// tuples at shutdown, so their pending counts never settle.
func (s *System) procsIdle() bool {
	for _, p := range s.procs {
		if !p.Alive() {
			continue
		}
		if p.batcher != nil && p.batcher.Pending() > 0 {
			return false
		}
	}
	return true
}

// NetStats exposes per-link CBN counters, sorted by (A, B). Both
// transports account them: SimNet synchronously on its single thread,
// LiveNet with per-link atomics (snapshotted here; Quiesce first for an
// exact cut).
func (s *System) NetStats() []*cbn.LinkStats {
	if s.sim != nil {
		return s.sim.Stats()
	}
	return s.live.Stats()
}

// TotalDataBytes sums tuple traffic over all overlay links.
func (s *System) TotalDataBytes() int64 { return s.net.TotalDataBytes() }
