#!/usr/bin/env bash
# Transport result-path benchmarks, on the internal/load harness.
#
#   scripts/bench_transport.sh          # refresh BENCH_transport.json + print A/B
#
# Refreshes the transport trajectory point in BENCH_transport.json via
# cmd/cosmosbench (the sustained scenario: 5000 tuples/s for 1s into 16
# subscriptions over the v2 wire, open-loop paced, sequence-ledger
# accounted; earlier points stay in the file's history block), then runs
# the v1-gob vs v2-binary result-path benchmark for comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== sustained load (writes BENCH_transport.json) =="
go run ./cmd/cosmosbench -scenario transport -rate 5000 -duration 1s -subs 16 \
    -out BENCH_transport.json -strict

echo
echo "== result path A/B: wire=1 (gob) vs wire=2 (binary) =="
go test . -run '^$' -bench BenchmarkDialResultPath -benchmem -benchtime 2s -count=1
