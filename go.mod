module cosmos

go 1.24
