package core

import "cosmos/internal/cql"

// PlacementPolicy selects the query-distribution strategy of the load
// management service (paper §2: "A user query is first distributed to a
// processor by the load management service").
type PlacementPolicy int

const (
	// LeastLoaded assigns each query to the processor with the fewest
	// live queries (ties broken by processor ID).
	LeastLoaded PlacementPolicy = iota
	// NearestToUser assigns the query to the processor with the smallest
	// dissemination-tree delay to the user's node, shortening the result
	// delivery path.
	NearestToUser
	// RoundRobin cycles through processors.
	RoundRobin
)

// String implements fmt.Stringer.
func (p PlacementPolicy) String() string {
	switch p {
	case NearestToUser:
		return "nearest-to-user"
	case RoundRobin:
		return "round-robin"
	default:
		return "least-loaded"
	}
}

// place picks a processor for a query under the configured policy,
// skipping failed processors. Callers hold s.mu. Returns nil when no
// processor is alive.
func (s *System) place(b *cql.Bound, userNode int) *Processor {
	_ = b // reserved for policies that weight by estimated rate
	alive := make([]*Processor, 0, len(s.procs))
	for _, p := range s.procs {
		if p.Alive() {
			alive = append(alive, p)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	switch s.opts.Placement {
	case NearestToUser:
		best := alive[0]
		bestD := s.treeDistance(best.Node, userNode)
		for _, p := range alive[1:] {
			if d := s.treeDistance(p.Node, userNode); d < bestD {
				best, bestD = p, d
			}
		}
		return best
	case RoundRobin:
		return alive[s.nextQID%len(alive)]
	default:
		best := alive[0]
		for _, p := range alive[1:] {
			if p.Load() < best.Load() {
				best = p
			}
		}
		return best
	}
}

// treeDistance sums link delays along the tree path between two nodes
// (via their lowest common ancestor).
func (s *System) treeDistance(a, b int) float64 {
	depthA, depthB := s.tree.Depth(a), s.tree.Depth(b)
	d := 0.0
	for depthA > depthB {
		d += s.tree.LinkDelay[a]
		a = s.tree.Parent[a]
		depthA--
	}
	for depthB > depthA {
		d += s.tree.LinkDelay[b]
		b = s.tree.Parent[b]
		depthB--
	}
	for a != b {
		d += s.tree.LinkDelay[a] + s.tree.LinkDelay[b]
		a, b = s.tree.Parent[a], s.tree.Parent[b]
	}
	return d
}
