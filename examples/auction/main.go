// Auction: the paper's running example (Table 1 and Figure 3).
//
// Queries q1 ("auctions that closed within three hours of opening") and
// q2 ("items and buyers of auctions closed within five hours") are
// submitted by users at different overlay nodes. COSMOS merges them into
// a representative query equivalent to q3 of Table 1, executes it once,
// and splits the result stream back with re-tightening profiles. The
// example prints the representative query, the member profiles, the
// per-user results, and the traffic comparison against non-shared
// delivery.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"cosmos/internal/core"
	"cosmos/internal/cql"
	"cosmos/internal/merge"
	"cosmos/internal/overlay"
	"cosmos/internal/sim"
	"cosmos/internal/stream"
)

const (
	q1Text = "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID"
	q2Text = "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID"
)

func main() {
	fmt.Println("== Table 1: query merging ==")
	showMerging()
	fmt.Println()
	fmt.Println("== Figure 3: share vs non-share delivery (300 auctions) ==")
	showFigure3()
	fmt.Println()
	fmt.Println("== End to end on the 4-node overlay ==")
	endToEnd()
}

// showMerging binds q1/q2, merges them, and prints the representative
// and the re-tightening profiles — the objects of paper §4.
func showMerging() {
	reg := stream.NewRegistry()
	mustRegister(reg)
	q1, err := cql.AnalyzeString(q1Text, reg)
	if err != nil {
		log.Fatal(err)
	}
	q2, err := cql.AnalyzeString(q2Text, reg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := merge.Queries(q1, q2, merge.ExactUnion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("q1:", q1Text)
	fmt.Println("q2:", q2Text)
	fmt.Println("representative (≈ q3 of Table 1):")
	fmt.Println("   ", rep.SynthesizeCQL())
	p1, err := merge.BuildMemberProfile(q1, rep, "s3")
	if err != nil {
		log.Fatal(err)
	}
	p2, err := merge.BuildMemberProfile(q2, rep, "s3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("p1 (re-tightens q1's 3-hour window):")
	fmt.Println("   ", p1)
	fmt.Println("p2 (q2's windows equal the representative's):")
	fmt.Println("   ", p2)
}

// showFigure3 quantifies the shared-delivery saving on the paper's
// 4-node overlay.
func showFigure3() {
	res, err := sim.RunFigure3(300, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %14s %14s %9s\n", "link", "non-share (B)", "share (B)", "saving")
	for _, l := range res.Links {
		saving := 1 - float64(l.ShareBytes)/float64(l.NonShareBytes)
		fmt.Printf("%-8s %14d %14d %8.1f%%\n", l.Name, l.NonShareBytes, l.ShareBytes, 100*saving)
	}
	fmt.Printf("%-8s %14d %14d %8.1f%%\n", "total",
		res.NonShareTotal, res.ShareTotal,
		100*(1-float64(res.ShareTotal)/float64(res.NonShareTotal)))
	fmt.Printf("deliveries identical under both strategies: q1=%d q2=%d\n",
		res.Q1Results, res.Q2Results)
}

// endToEnd runs the merged system live and prints each user's results.
func endToEnd() {
	tree := fourNodeTree()
	sys, err := core.NewSystem(core.Options{
		Tree:           tree,
		ProcessorNodes: []int{0},
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	openInfo, closedInfo := auctionInfos()
	openPort, err := sys.RegisterStream(openInfo, 0)
	if err != nil {
		log.Fatal(err)
	}
	closedPort, err := sys.RegisterStream(closedInfo, 0)
	if err != nil {
		log.Fatal(err)
	}
	_, err = sys.Submit(q1Text, 2, func(t stream.Tuple) {
		fmt.Printf("  user n3 (q1): item %v closed fast\n", t.MustGet("OpenAuction.itemID"))
	})
	if err != nil {
		log.Fatal(err)
	}
	_, err = sys.Submit(q2Text, 3, func(t stream.Tuple) {
		fmt.Printf("  user n4 (q2): item %v bought by %v\n",
			t.MustGet("OpenAuction.itemID"), t.MustGet("ClosedAuction.buyerID"))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processor groups: %d (q1 and q2 merged)\n", sys.Processors()[0].Groups())

	rng := rand.New(rand.NewSource(7))
	h := int64(stream.Hour)
	type closeEv struct {
		ts   stream.Timestamp
		item int64
	}
	var closes []closeEv
	for item := int64(1); item <= 6; item++ {
		openTs := stream.Timestamp(item * 10 * 60000)
		t := stream.MustTuple(openInfo.Schema, openTs,
			stream.Int(item), stream.Int(rng.Int63n(50)), stream.Float(rng.Float64()*900), stream.Time(openTs))
		if err := openPort.Publish(t); err != nil {
			log.Fatal(err)
		}
		closes = append(closes, closeEv{ts: openTs + stream.Timestamp(item*h), item: item})
	}
	sort.Slice(closes, func(i, j int) bool { return closes[i].ts < closes[j].ts })
	for _, c := range closes {
		t := stream.MustTuple(closedInfo.Schema, c.ts,
			stream.Int(c.item), stream.Int(100+c.item), stream.Time(c.ts))
		if err := closedPort.Publish(t); err != nil {
			log.Fatal(err)
		}
	}
}

// fourNodeTree builds Figure 3's overlay: n1 — n2, n2 — n3, n2 — n4.
func fourNodeTree() *overlay.Tree {
	return &overlay.Tree{
		Root:      0,
		Parent:    []int{-1, 0, 1, 1},
		Children:  [][]int{{1}, {2, 3}, {}, {}},
		LinkDelay: []float64{0, 10, 10, 10},
	}
}

func mustRegister(reg *stream.Registry) {
	open, closed := auctionInfos()
	if err := reg.Register(open); err != nil {
		log.Fatal(err)
	}
	if err := reg.Register(closed); err != nil {
		log.Fatal(err)
	}
}

func auctionInfos() (*stream.Info, *stream.Info) {
	open := &stream.Info{Schema: stream.MustSchema("OpenAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "sellerID", Kind: stream.KindInt},
		stream.Field{Name: "start_price", Kind: stream.KindFloat},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 50, Stats: map[string]stream.AttrStats{
		"itemID": {Min: 0, Max: 1e6, Distinct: 1000000},
	}}
	closed := &stream.Info{Schema: stream.MustSchema("ClosedAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "buyerID", Kind: stream.KindInt},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 30, Stats: map[string]stream.AttrStats{
		"itemID": {Min: 0, Max: 1e6, Distinct: 1000000},
	}}
	return open, closed
}
