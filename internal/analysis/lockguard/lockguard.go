// Package lockguard machine-checks the repo's lock-annotation comments.
// A struct field documented `guarded by <mu>` (where <mu> is a sibling
// sync.Mutex or sync.RWMutex field) may only be accessed in functions
// that visibly acquire that mutex on the same base value — or that are
// documented to run with it held.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cosmos/internal/analysis/framework"
)

// Analyzer flags accesses to `guarded by <mu>` fields without lock
// evidence. The check is syntactic and flow-insensitive by design:
//
//   - evidence that <mu> is held is a `<base>.<mu>.Lock()` or
//     `.RLock()` call anywhere in the function, with <base> the same
//     access path as the guarded access (identifiers resolve through
//     their objects, so shadowing cannot forge a match);
//   - RLock vouches only for reads; writes (assignment to the field,
//     or through its map/slice/pointer) require Lock;
//   - functions whose name ends in "Locked", or whose doc comment says
//     the caller holds the lock ("Callers hold b.mu.", "caller must
//     hold mu", "held by the caller"), are exempt — they inherit the
//     caller's critical section;
//   - values freshly constructed in the function (composite literal or
//     new) are exempt until published: constructors initialise guarded
//     fields before any other goroutine can see them.
//
// A `guarded by` comment naming a sibling that does not exist or is not
// a mutex is itself a diagnostic, so the grammar stays machine-parsable
// across the codebase.
var Analyzer = &framework.Analyzer{
	Name: "lockguard",
	Doc:  "enforce `guarded by <mu>` field comments",
	Run:  run,
}

var guardRe = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

const (
	lockShared    = 1 << iota // RLock
	lockExclusive             // Lock
)

func run(pass *framework.Pass) error {
	guards := buildGuardIndex(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if exemptFunc(fd) {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// guardInfo records that a field is guarded by the sibling mutex field
// named mu.
type guardInfo struct {
	mu string
}

// buildGuardIndex walks every loaded package so cross-package accesses
// to exported guarded fields resolve; malformed comments are reported
// only for the package currently under analysis (one report program-wide).
func buildGuardIndex(pass *framework.Pass) map[types.Object]guardInfo {
	guards := map[types.Object]guardInfo{}
	for _, pkg := range pass.Prog.Packages {
		report := pkg == pass.Pkg
		info := pkg.TypesInfo
		for _, f := range pkg.Syntax {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				indexStruct(pass, info, st, report, guards)
				return true
			})
		}
	}
	return guards
}

func indexStruct(pass *framework.Pass, info *types.Info, st *ast.StructType, report bool, guards map[types.Object]guardInfo) {
	siblings := map[string]ast.Expr{}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			siblings[name.Name] = field.Type
		}
	}
	for _, field := range st.Fields.List {
		mu := guardName(field)
		if mu == "" {
			continue
		}
		typ, ok := siblings[mu]
		if !ok || !isMutexType(info.TypeOf(typ)) {
			if report {
				for _, name := range field.Names {
					pass.Reportf(name.Pos(),
						"guarded-by comment names unknown or non-mutex sibling %q", mu)
				}
			}
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				guards[obj] = guardInfo{mu: mu}
			}
		}
	}
}

// guardName extracts the mutex name from a field's doc or line comment.
func guardName(field *ast.Field) string {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if g == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// callerHoldsRe matches the repo's caller-holds-the-lock doc grammar:
// "Callers hold b.mu.", "caller must hold mu", "held by the caller".
var callerHoldsRe = regexp.MustCompile(`(?i)(callers?\s+(must\s+)?holds?\b|held by the caller)`)

// exemptFunc reports whether fd inherits its caller's critical section:
// the *Locked naming convention, or a doc comment saying so.
func exemptFunc(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	return fd.Doc != nil && callerHoldsRe.MatchString(fd.Doc.Text())
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, guards map[types.Object]guardInfo) {
	info := pass.TypesInfo

	// Lock evidence: access path of the mutex -> strongest mode seen.
	held := map[string]int{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var mode int
		switch sel.Sel.Name {
		case "Lock":
			mode = lockExclusive | lockShared
		case "RLock":
			mode = lockShared
		default:
			return true
		}
		if !isMutexType(info.TypeOf(sel.X)) {
			return true
		}
		if path, ok := framework.BasePath(info, sel.X); ok {
			held[path] |= mode
		}
		return true
	})

	// Freshly constructed locals: writable before publication.
	fresh := map[types.Object]bool{}
	setFresh := func(id *ast.Ident, on bool) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if on {
			fresh[obj] = true
		} else {
			delete(fresh, obj)
		}
	}
	isFreshExpr := func(e ast.Expr) bool {
		switch e := framework.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, lit := framework.Unparen(e.X).(*ast.CompositeLit)
			return lit
		case *ast.CallExpr:
			id, ok := framework.Unparen(e.Fun).(*ast.Ident)
			return ok && id.Name == "new" && info.Uses[id] != nil &&
				info.Uses[id].Parent() == types.Universe
		}
		return false
	}

	// Write targets: guarded selectors assigned directly or mutated
	// through one level of index/deref.
	writes := map[*ast.SelectorExpr]bool{}
	markWrite := func(e ast.Expr) {
		switch l := framework.Unparen(e).(type) {
		case *ast.SelectorExpr:
			writes[l] = true
		case *ast.IndexExpr:
			if sel, ok := framework.Unparen(l.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		case *ast.StarExpr:
			if sel, ok := framework.Unparen(l.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
			for i, lhs := range n.Lhs {
				if id, ok := framework.Unparen(lhs).(*ast.Ident); ok {
					on := len(n.Lhs) == len(n.Rhs) && isFreshExpr(n.Rhs[i])
					setFresh(id, on)
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						setFresh(name, i < len(vs.Values) && isFreshExpr(vs.Values[i]))
					}
				}
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok {
			return true
		}
		g, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		if obj := framework.RootIdentObj(info, sel.X); obj != nil && fresh[obj] {
			return true
		}
		base, ok := framework.BasePath(info, sel.X)
		if !ok {
			return true // unstable base; nothing to match evidence against
		}
		mode := held[base+"."+g.mu]
		if writes[sel] {
			if mode&lockExclusive == 0 {
				what := "without"
				if mode&lockShared != 0 {
					what = "holding only RLock on"
				}
				pass.Reportf(sel.Sel.Pos(),
					"write to %s (guarded by %s) %s %s.%s in %s",
					sel.Sel.Name, g.mu, what, exprText(sel.X), g.mu, fd.Name.Name)
			}
			return true
		}
		if mode == 0 {
			pass.Reportf(sel.Sel.Pos(),
				"read of %s (guarded by %s) without %s.%s.Lock or RLock in %s",
				sel.Sel.Name, g.mu, exprText(sel.X), g.mu, fd.Name.Name)
		}
		return true
	})
}

// exprText renders a base expression for diagnostics ("b", "h.state").
// Best-effort: falls back to "<base>" for exotic expressions.
func exprText(e ast.Expr) string {
	switch e := framework.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.UnaryExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	}
	return "<base>"
}
