package spe

import (
	"fmt"
	"strings"

	"cosmos/internal/cql"
	"cosmos/internal/stream"
)

// aggState executes grouped windowed aggregation over a single stream
// under the Istream-per-update model: every surviving input tuple emits
// its group's updated aggregate row evaluated over the live window.
type aggState struct {
	bound *cql.Bound
	// groupCols are the bare attribute names of the grouping columns.
	groupCols []string
	// plainCols are the bare names of the selected grouping columns, in
	// output order.
	plainCols []string
}

func newAggState(b *cql.Bound) (*aggState, error) {
	a := &aggState{bound: b}
	for _, g := range b.GroupBy {
		a.groupCols = append(a.groupCols, g.Name)
	}
	for _, c := range b.SelectCols {
		a.plainCols = append(a.plainCols, c.Name)
	}
	for _, spec := range b.Aggs {
		switch spec.Func {
		case cql.AggCount, cql.AggSum, cql.AggAvg, cql.AggMin, cql.AggMax:
		default:
			return nil, fmt.Errorf("spe: unsupported aggregate %s", spec.Func)
		}
	}
	return a, nil
}

// groupKey renders a tuple's grouping values canonically.
func (a *aggState) groupKey(t stream.Tuple) (string, error) {
	if len(a.groupCols) == 0 {
		return "", nil
	}
	var b strings.Builder
	for i, col := range a.groupCols {
		v, ok := t.Get(col)
		if !ok {
			return "", fmt.Errorf("spe: tuple lacks grouping attribute %s", col)
		}
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String(), nil
}

// update emits the refreshed aggregate row of the group the new tuple
// belongs to. in.buf already contains the tuple and has been evicted to
// the live window.
func (a *aggState) update(in *inputState, t stream.Tuple) ([]stream.Tuple, error) {
	key, err := a.groupKey(t)
	if err != nil {
		return nil, err
	}
	// Collect the group's live window.
	var members []stream.Tuple
	for _, u := range in.buf {
		k, err := a.groupKey(u)
		if err != nil {
			return nil, err
		}
		if k == key {
			members = append(members, u)
		}
	}
	b := a.bound
	values := make([]stream.Value, 0, len(a.plainCols)+len(b.Aggs))
	for _, col := range a.plainCols {
		v, _ := t.Get(col)
		values = append(values, v)
	}
	for _, spec := range b.Aggs {
		v, err := evalAgg(spec, members)
		if err != nil {
			return nil, err
		}
		values = append(values, v)
	}
	// Result schema lives on the plan; update is called by the plan which
	// owns the rename — assemble with the bound schema arity and let the
	// caller rebind. Here we build directly against the plan's Result via
	// closure-free design: the plan passes itself in via inputState? To
	// keep the dependency one-way, emit with the bound's OutSchema and
	// let Plan.rebind fix the schema pointer.
	out := stream.Tuple{Schema: b.OutSchema, Ts: t.Ts, Values: values}
	return []stream.Tuple{out}, nil
}

// evalAgg computes one aggregate over the group members.
func evalAgg(spec cql.AggSpec, members []stream.Tuple) (stream.Value, error) {
	if spec.Func == cql.AggCount {
		return stream.Int(int64(len(members))), nil
	}
	if len(members) == 0 {
		// Cannot happen under per-update emission (the triggering tuple
		// is a member), but keep a defined value.
		return stream.Float(0), nil
	}
	var sum float64
	var minV, maxV stream.Value
	for i, m := range members {
		v, ok := m.Get(spec.Arg.Name)
		if !ok {
			return stream.Value{}, fmt.Errorf("spe: tuple lacks aggregate attribute %s", spec.Arg.Name)
		}
		switch spec.Func {
		case cql.AggSum, cql.AggAvg:
			sum += v.AsFloat()
		case cql.AggMin:
			if i == 0 {
				minV = v
			} else if c, err := v.Compare(minV); err == nil && c < 0 {
				minV = v
			}
		case cql.AggMax:
			if i == 0 {
				maxV = v
			} else if c, err := v.Compare(maxV); err == nil && c > 0 {
				maxV = v
			}
		}
	}
	switch spec.Func {
	case cql.AggSum, cql.AggAvg:
		if spec.Func == cql.AggAvg {
			sum /= float64(len(members))
		}
		return stream.Float(sum), nil
	case cql.AggMin:
		return minV, nil
	default:
		return maxV, nil
	}
}
