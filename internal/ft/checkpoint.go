package ft

import (
	"fmt"
	"sync"

	"cosmos/internal/cql"
	"cosmos/internal/spe"
)

// Checkpointer retains the latest snapshot of every registered plan —
// the query-layer recovery state (paper §2). In a distributed
// deployment snapshots would be replicated to a standby; here they live
// in memory and the Failover helper replays them onto a survivor engine.
type Checkpointer struct {
	mu    sync.Mutex
	snaps map[string]*spe.Snapshot // guarded by mu
	// queries retains each plan's bound query and result stream so a
	// survivor can recompile it. Guarded by mu.
	queries map[string]checkpointMeta
}

type checkpointMeta struct {
	bound        *cql.Bound
	resultStream string
}

// NewCheckpointer builds an empty checkpoint store.
func NewCheckpointer() *Checkpointer {
	return &Checkpointer{
		snaps:   map[string]*spe.Snapshot{},
		queries: map[string]checkpointMeta{},
	}
}

// Register associates a plan ID with its query definition.
func (c *Checkpointer) Register(id string, b *cql.Bound, resultStream string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries[id] = checkpointMeta{bound: b, resultStream: resultStream}
}

// Capture stores the plan's current state.
func (c *Checkpointer) Capture(p *spe.Plan) {
	snap := p.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps[p.ID] = snap
}

// Snapshot returns the latest snapshot of a plan.
func (c *Checkpointer) Snapshot(id string) (*spe.Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.snaps[id]
	return s, ok
}

// Drop forgets a plan's checkpoints (query removed).
func (c *Checkpointer) Drop(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.snaps, id)
	delete(c.queries, id)
}

// Engine is the minimal engine surface Failover recovers onto. Both the
// sequential spe.Engine and the sharded exec.Runtime implement it;
// WithPlan must quiesce the named plan while fn runs, so restoration
// cannot race concurrent pushes.
type Engine interface {
	Install(id string, b *cql.Bound, resultStream string) (*spe.Plan, error)
	WithPlan(id string, fn func(*spe.Plan)) bool
}

// Failover recompiles every checkpointed plan onto the survivor engine
// and restores the captured state, returning the recovered plan IDs.
// Plans without a snapshot restart cold (empty windows). Tuples the
// survivor consumes between a plan's Install and its Restore are
// superseded by the snapshot — the recovery point is the checkpoint.
func (c *Checkpointer) Failover(survivor Engine) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var recovered []string
	for id, meta := range c.queries {
		if _, err := survivor.Install(id, meta.bound, meta.resultStream); err != nil {
			return recovered, fmt.Errorf("ft: reinstalling %s: %w", id, err)
		}
		if snap, ok := c.snaps[id]; ok {
			var rerr error
			survivor.WithPlan(id, func(p *spe.Plan) { rerr = p.Restore(snap) })
			if rerr != nil {
				return recovered, fmt.Errorf("ft: restoring %s: %w", id, rerr)
			}
		}
		recovered = append(recovered, id)
	}
	return recovered, nil
}
