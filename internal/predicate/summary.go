package predicate

import (
	"sort"

	"cosmos/internal/stream"
)

// termSummary condenses all constraints a conjunction places on one term
// into a normal form: a numeric interval plus exclusion points for numeric
// terms, an equality/exclusion view for strings, and a bag of opaque
// constraints (e.g. string range comparisons) that are only reasoned about
// syntactically.
type termSummary struct {
	iv       Interval
	ne       map[float64]bool // numeric points excluded via NE
	strEq    *string          // exact string equality, nil if none
	strNe    map[string]bool
	opaque   map[string]bool // canonical renderings of opaque constraints
	conflict bool            // contradictory constraints (unsatisfiable)
}

func newTermSummary() *termSummary {
	return &termSummary{
		iv:     Universal(),
		ne:     map[float64]bool{},
		strNe:  map[string]bool{},
		opaque: map[string]bool{},
	}
}

// add folds one constraint into the summary.
func (s *termSummary) add(c Constraint) {
	switch c.Const.Kind() {
	case stream.KindInt, stream.KindFloat, stream.KindTime, stream.KindBool:
		v := c.Const.AsFloat()
		if c.Op == NE {
			s.ne[v] = true
			return
		}
		iv, ok := FromOp(c.Op, v)
		if ok {
			s.iv = s.iv.Intersect(iv)
		}
	case stream.KindString:
		str := c.Const.AsString()
		switch c.Op {
		case EQ:
			if s.strEq != nil && *s.strEq != str {
				s.conflict = true
				return
			}
			cp := str
			s.strEq = &cp
		case NE:
			s.strNe[str] = true
		default:
			// String range comparison: keep opaquely.
			s.opaque[c.String()] = true
		}
	default:
		s.opaque[c.String()] = true
	}
}

// satisfiable reports whether the summary admits any value. For numeric
// terms an NE exclusion only empties a point interval.
func (s *termSummary) satisfiable() bool {
	if s.conflict {
		return false
	}
	if s.iv.Empty() {
		return false
	}
	if p, ok := s.iv.IsPoint(); ok && s.ne[p] {
		return false
	}
	if s.strEq != nil && s.strNe[*s.strEq] {
		return false
	}
	return true
}

// excludes reports whether the summary provably rejects the numeric point p.
func (s *termSummary) excludes(p float64) bool {
	if s.ne[p] {
		return true
	}
	return !s.iv.Contains(p)
}

// impliedBy reports whether any value satisfying "other" also satisfies s
// (i.e. other ⟹ s for this term). The test is sound but not complete.
func (s *termSummary) impliedBy(other *termSummary) bool {
	// Numeric part: other's admissible region must sit inside s's.
	if !s.iv.ContainsInterval(other.iv) {
		// One rescue: s's interval may exclude only points other excludes
		// via NE; we do not chase that completeness hole and simply fail.
		return false
	}
	for p := range s.ne {
		if !other.excludes(p) {
			return false
		}
	}
	// String part.
	if s.strEq != nil {
		if other.strEq == nil || *other.strEq != *s.strEq {
			return false
		}
	}
	for str := range s.strNe {
		if other.strEq != nil && *other.strEq != str {
			continue // equality to a different string excludes str
		}
		if !other.strNe[str] {
			return false
		}
	}
	// Opaque constraints must appear verbatim on the other side.
	for o := range s.opaque {
		if !other.opaque[o] {
			return false
		}
	}
	return true
}

// summaries normalises a conjunction into per-term summaries keyed by the
// term's canonical rendering.
func summarize(cj Conj) map[string]*termSummary {
	out := map[string]*termSummary{}
	for _, c := range cj {
		key := c.Term.String()
		s, ok := out[key]
		if !ok {
			s = newTermSummary()
			out[key] = s
		}
		s.add(c)
	}
	return out
}

// Satisfiable reports whether the conjunction admits at least one tuple,
// considering each term independently (sound for the attribute/constant
// constraint language of CBN filters; attribute-difference terms are
// treated as independent variables, which is conservative).
func (cj Conj) Satisfiable() bool {
	for _, s := range summarize(cj) {
		if !s.satisfiable() {
			return false
		}
	}
	return true
}

// Implies reports whether a ⟹ b: every tuple satisfying a also satisfies
// b. Sound but not complete — it may answer false for implications that
// hold through cross-term reasoning. An unsatisfiable a implies anything.
func Implies(a, b Conj) bool {
	sa := summarize(a)
	for _, s := range sa {
		if !s.satisfiable() {
			return true
		}
	}
	sb := summarize(b)
	for term, tb := range sb {
		ta, ok := sa[term]
		if !ok {
			ta = newTermSummary() // a is unconstrained on this term
		}
		if !tb.impliedBy(ta) {
			return false
		}
	}
	return true
}

// Equivalent reports mutual implication.
func Equivalent(a, b Conj) bool {
	return Implies(a, b) && Implies(b, a)
}

// Hull returns a conjunction that is implied by both inputs: the per-term
// convex hull. Terms constrained on only one side are dropped (the other
// side is unconstrained there, so any shared constraint would be wrong).
// This is the predicate-loosening step of representative-query
// composition; exactness is recovered downstream by re-tightening profiles.
func Hull(a, b Conj) Conj {
	sa, sb := summarize(a), summarize(b)
	// Deterministic order for reproducible output.
	terms := make([]string, 0, len(sa))
	for t := range sa {
		if _, ok := sb[t]; ok {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)

	var out Conj
	for _, tkey := range terms {
		ta, tb := sa[tkey], sb[tkey]
		term := parseTermKey(tkey)
		// Numeric hull.
		hull := ta.iv.Hull(tb.iv)
		out = append(out, intervalConstraints(term, hull)...)
		// Shared NE exclusions that both sides provably exclude.
		for p := range ta.ne {
			if tb.excludes(p) && hull.Contains(p) {
				out = append(out, Constraint{Term: term, Op: NE, Const: stream.Float(p)})
			}
		}
		// String equality survives only if identical on both sides.
		if ta.strEq != nil && tb.strEq != nil && *ta.strEq == *tb.strEq {
			out = append(out, Constraint{Term: term, Op: EQ, Const: stream.String_(*ta.strEq)})
		}
		// Shared string exclusions.
		strNe := make([]string, 0, len(ta.strNe))
		for s := range ta.strNe {
			if tb.strNe[s] || (tb.strEq != nil && *tb.strEq != s) {
				strNe = append(strNe, s)
			}
		}
		sort.Strings(strNe)
		for _, s := range strNe {
			out = append(out, Constraint{Term: term, Op: NE, Const: stream.String_(s)})
		}
	}
	return out
}

// parseTermKey reverses Term.String. Attribute names may themselves contain
// dots (qualified names) but never the '-' separator we emit, except that
// qualified names like "O.start-x" would be ambiguous; COSMOS attribute
// names are restricted to identifier characters plus '.', so a plain split
// on the last '-' is safe only if names have no '-'. We split on the first
// '-' to match Diff construction.
func parseTermKey(key string) Term {
	for i := 0; i < len(key); i++ {
		if key[i] == '-' {
			return Term{A: key[:i], B: key[i+1:]}
		}
	}
	return Term{A: key}
}

// intervalConstraints renders an interval back into constraints on a term.
func intervalConstraints(term Term, iv Interval) Conj {
	var out Conj
	if p, ok := iv.IsPoint(); ok {
		return Conj{{Term: term, Op: EQ, Const: stream.Float(p)}}
	}
	if iv.HasLo {
		op := GE
		if iv.LoOpen {
			op = GT
		}
		out = append(out, Constraint{Term: term, Op: op, Const: stream.Float(iv.Lo)})
	}
	if iv.HasHi {
		op := LE
		if iv.HiOpen {
			op = LT
		}
		out = append(out, Constraint{Term: term, Op: op, Const: stream.Float(iv.Hi)})
	}
	return out
}

// IntervalFor extracts the numeric interval a conjunction induces on a
// term; the boolean reports whether the term is constrained at all. Used
// by the selectivity estimator.
func (cj Conj) IntervalFor(term Term) (Interval, bool) {
	s, ok := summarize(cj)[term.String()]
	if !ok {
		return Universal(), false
	}
	return s.iv, true
}
