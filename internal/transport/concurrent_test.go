package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
)

// TestConcurrentClients exercises the daemon with several clients
// registering, querying and publishing simultaneously — the shape a real
// deployment sees. Run with -race in CI.
func TestConcurrentClients(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	// One publisher client registers the stream.
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	info := auctionInfo()
	if err := pub.Register(info, 0); err != nil {
		t.Fatal(err)
	}

	const subscribers = 4
	var delivered atomic.Int64
	var wg sync.WaitGroup
	clients := make([]*Client, subscribers)
	for i := 0; i < subscribers; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
		// Each subscriber has a different threshold.
		q := fmt.Sprintf("SELECT itemID FROM OpenAuction [Now] WHERE start_price > %d", i*100)
		if _, err := c.Submit(q, (i+3)%16, func(stream.Tuple, uint64) {
			delivered.Add(1)
		}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	const tuples = 50
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < tuples; i++ {
			tp := stream.MustTuple(info.Schema, stream.Timestamp(i+1),
				stream.Int(int64(i)), stream.Float(float64((i*37)%400)))
			if err := pub.Publish(tp); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Expected deliveries: per tuple, the subscribers whose threshold is
	// below its price.
	want := 0
	for i := 0; i < tuples; i++ {
		price := float64((i * 37) % 400)
		for s := 0; s < subscribers; s++ {
			if price > float64(s*100) {
				want++
			}
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for delivered.Load() != int64(want) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := delivered.Load(); got != int64(want) {
		t.Fatalf("delivered %d results, want %d", got, want)
	}

	st, err := pub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != subscribers {
		t.Errorf("queries = %d", st.Queries)
	}
}

// startLiveServer hosts a LiveSystem behind a server on an ephemeral
// port — the cosmosd default assembly — and tears it down gracefully.
func startLiveServer(t *testing.T, workers int) (addr string, sys *core.System, shutdown func()) {
	t.Helper()
	ls, err := core.NewLiveSystem(core.Options{
		Nodes: 16, Seed: 3, ExecWorkers: workers, IngestBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ls.System, WithSystemClose(ls.Close))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return ln.Addr().String(), ls.System, func() {
		if err := srv.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	}
}

// TestConcurrentSubscribeCancelMidStream runs several clients against a
// live-system server, each repeatedly subscribing, taking a few results
// off a continuous publish stream, and cancelling mid-stream while the
// publisher keeps going. Every subscription must end exactly once with a
// nil error, and the system must be empty of queries afterwards. Run
// with -race in CI.
func TestConcurrentSubscribeCancelMidStream(t *testing.T) {
	addr, sys, shutdown := startLiveServer(t, 2)
	defer shutdown()

	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	info := auctionInfo()
	if err := pub.Register(info, 0); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tp := stream.MustTuple(info.Schema, stream.Timestamp(i+1),
				stream.Int(int64(i)), stream.Float(float64((i*37)%400)))
			if err := pub.Publish(tp); err != nil {
				return // connection torn down at test end
			}
		}
	}()

	const subscribers, rounds = 5, 3
	var wg sync.WaitGroup
	for s := 0; s < subscribers; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				var got atomic.Int64
				endCh := make(chan error, 1)
				q := fmt.Sprintf("SELECT itemID FROM OpenAuction [Now] WHERE start_price > %d", (s*50)%300)
				tag, err := c.Submit(q, (s+3)%16,
					func(stream.Tuple, uint64) { got.Add(1) },
					func(err error) { endCh <- err }, nil)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				deadline := time.Now().Add(10 * time.Second)
				for got.Load() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if got.Load() == 0 {
					t.Errorf("subscriber %d round %d: no results while publishing", s, r)
				}
				if err := c.Cancel(tag); err != nil {
					t.Errorf("cancel: %v", err)
				}
				select {
				case err := <-endCh:
					if err != nil {
						t.Errorf("subscription ended with %v, want nil", err)
					}
				case <-time.After(5 * time.Second):
					t.Errorf("subscriber %d round %d: onEnd never fired", s, r)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-pubDone
	deadline := time.Now().Add(5 * time.Second)
	for sys.Queries() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := sys.Queries(); n != 0 {
		t.Errorf("%d queries left after all cancels", n)
	}
}

// TestCancelAfterCloseIdempotent: cancelling after the client closed must
// fail cleanly (no panic, no hang), and Close itself is idempotent.
func TestCancelAfterCloseIdempotent(t *testing.T) {
	addr, _, shutdown := startLiveServer(t, 1)
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(auctionInfo(), 1); err != nil {
		t.Fatal(err)
	}
	ends := make(chan error, 1)
	tag, err := c.Submit("SELECT itemID FROM OpenAuction [Now]", 2,
		nil, func(err error) { ends <- err }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ends:
		if err != nil {
			t.Errorf("close ended subscription with %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onEnd never fired on Close")
	}
	if err := c.Cancel(tag); err == nil {
		t.Error("Cancel after Close should report the closed client")
	}
	if err := c.Cancel(tag); err == nil {
		t.Error("second Cancel after Close should still error, not panic")
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

// TestServerShutdownDrainsAndEnds: a graceful server shutdown must first
// flush every in-flight result onto the wire, then end the subscription
// with a clean MsgEnd, before the connection drops.
func TestServerShutdownDrainsAndEnds(t *testing.T) {
	addr, _, shutdown := startLiveServer(t, 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info := auctionInfo()
	if err := c.Register(info, 1); err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	endCh := make(chan error, 1)
	if _, err := c.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100", 5,
		func(stream.Tuple, uint64) { got.Add(1) },
		func(err error) { endCh <- err }, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil { // settle the subscription
		t.Fatal(err)
	}
	const matching = 20
	for i := 0; i < matching; i++ {
		tp := stream.MustTuple(info.Schema, stream.Timestamp(i+1),
			stream.Int(int64(i)), stream.Float(500))
		if err := c.Publish(tp); err != nil {
			t.Fatal(err)
		}
	}
	shutdown() // graceful: drains, pushes MsgEnd, closes the system
	select {
	case err := <-endCh:
		if err != nil {
			t.Errorf("subscription ended with %v, want clean end", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription never ended on server shutdown")
	}
	if n := got.Load(); n != matching {
		t.Errorf("received %d results before the end, want %d (drain must precede MsgEnd)", n, matching)
	}
	// The connection is gone: calls fail rather than hang.
	if _, err := c.Stats(); err == nil {
		t.Error("Stats after server shutdown should fail")
	}
}
