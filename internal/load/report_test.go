package load

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func readReportFile(t *testing.T, path string) map[string]json.RawMessage {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(data, &obj); err != nil {
		t.Fatalf("report file is not valid JSON: %v", err)
	}
	return obj
}

func asMap(t *testing.T, raw json.RawMessage) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteReportFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := WriteReport(path, &Report{Area: "x", Scenario: "transport"}); err != nil {
		t.Fatal(err)
	}
	obj := readReportFile(t, path)
	var schema string
	if err := json.Unmarshal(obj["schema"], &schema); err != nil || schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", schema, SchemaVersion)
	}
	var m Machine
	if err := json.Unmarshal(obj["machine"], &m); err != nil || m.Go == "" || m.CPUs == 0 {
		t.Fatalf("machine block not filled: %+v", m)
	}
	if _, ok := obj["history"]; ok {
		t.Fatal("fresh report must not carry a history block")
	}
}

// A pre-harness report — any JSON object, here the flat v1
// BENCH_transport.json layout — survives verbatim as the oldest history
// entry when the harness writes over it.
func TestWriteReportMigratesLegacyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_transport.json")
	legacy := `{"bench":"sustained-transport-load","wire_version":2,"p50_us":194,"p99_us":1007}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(path, &Report{Area: "transport"}); err != nil {
		t.Fatal(err)
	}
	obj := readReportFile(t, path)
	var hist []json.RawMessage
	if err := json.Unmarshal(obj["history"], &hist); err != nil || len(hist) != 1 {
		t.Fatalf("history holds %d entries, want the legacy report alone", len(hist))
	}
	var want map[string]any
	if err := json.Unmarshal([]byte(legacy), &want); err != nil {
		t.Fatal(err)
	}
	if got := asMap(t, hist[0]); !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy report mangled in history:\ngot  %v\nwant %v", got, want)
	}
}

// Successive writes accumulate the trajectory oldest-first, hoisting
// each overwritten report's own history so entries never nest.
func TestWriteReportAccumulatesTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	for i, gen := range []string{"2026-01-01T00:00:00Z", "2026-02-01T00:00:00Z", "2026-03-01T00:00:00Z"} {
		if err := WriteReport(path, &Report{Area: "x", Generated: gen}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	obj := readReportFile(t, path)
	var hist []json.RawMessage
	if err := json.Unmarshal(obj["history"], &hist); err != nil || len(hist) != 2 {
		t.Fatalf("history holds %d entries, want 2", len(hist))
	}
	for i, want := range []string{"2026-01-01T00:00:00Z", "2026-02-01T00:00:00Z"} {
		entry := asMap(t, hist[i])
		if entry["generated"] != want {
			t.Fatalf("history[%d] generated = %v, want %v (oldest first)", i, entry["generated"], want)
		}
		if _, ok := entry["history"]; ok {
			t.Fatalf("history[%d] carries a nested history block", i)
		}
	}
	var gen string
	if err := json.Unmarshal(obj["generated"], &gen); err != nil || gen != "2026-03-01T00:00:00Z" {
		t.Fatalf("head generated = %q, want the newest point", gen)
	}
}

// A corrupt existing file must fail loudly, not be silently clobbered:
// the trajectory is the point of the file.
func TestWriteReportRefusesCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(path, &Report{Area: "x"}); err == nil {
		t.Fatal("WriteReport over a corrupt file succeeded; want a migration error")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "not json" {
		t.Fatal("corrupt file was clobbered despite the migration error")
	}
}
