package load

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
	"cosmos/internal/transport"
)

// The clients scenario stresses the daemon's connection fan-out:
// hundreds of independently dialling TCP clients (cfg.Clients), each
// holding one pass-through subscription over one of cfg.Streams source
// streams, while tuples flow at the held rate. The dial storm — every
// connection and subscription arriving concurrently — is the scenario's
// point and runs fully live. Halfway through, every fourth client
// cancels and resubmits; like the churn scenario's membership ops, that
// burst happens at an announced quiesced boundary (identical queries on
// one stream share a merged group, and a live re-version drops
// co-members' in-flight results — see internal/load/churn.go), so every
// ledger stays exact: stable clients account for every sequence,
// churned replacements for everything from the boundary on.
const clientsNodes = 32

// tcpClient is one dialling client's bookkeeping; tag/track are
// replaced when the client churns at the halfway boundary.
type tcpClient struct {
	conn    *transport.Client
	stream  int
	churner bool
	tag     string
	track   *Track
}

func runClients(cfg Config) (*Report, error) {
	addr := cfg.Addr
	var dep *liveDeployment
	if addr == "" {
		var err error
		dep, err = startLive(core.Options{
			Nodes: clientsNodes, Seed: cfg.Seed, ExecWorkers: cfg.Workers, IngestBatch: 1,
		}, true)
		if err != nil {
			return nil, err
		}
		defer dep.close()
		addr = dep.addr
	}

	perStream := cfg.Rate / cfg.Streams
	if perStream < 1 {
		perStream = 1
	}
	pubs := make([]*publisher, cfg.Streams)
	for i := range pubs {
		p, err := newPublisher(dep, addr, loadInfo(fmt.Sprintf("Feed%02d", i), perStream), 1+i%4)
		if err != nil {
			return nil, err
		}
		defer p.close()
		pubs[i] = p
	}

	rec := NewRecorder(time.Now())
	var extractErr atomic.Value

	// subscribe installs (or replaces) the client's one subscription;
	// firstDue is the stream's next sequence once the subscription is
	// settled (0 before traffic, the boundary's cursor when churning).
	subscribe := func(cl *tcpClient, firstDue int64) error {
		track := rec.NewTrack(1).Expect(firstDue)
		var x seqPub
		tag, err := cl.conn.Submit(loadQuery(pubs[cl.stream].schema.Stream),
			cl.stream%clientsNodes, func(t stream.Tuple, _ uint64) {
				seq, pubNs, err := x.extract(t)
				if err != nil {
					extractErr.CompareAndSwap(nil, err)
					return
				}
				rec.Observe(track, seq, pubNs, int64(t.Ts))
			}, nil, nil)
		if err != nil {
			return err
		}
		cl.tag, cl.track = tag, track
		return nil
	}

	// Dial and subscribe all clients concurrently — the point of the
	// scenario is many independent sessions arriving at once.
	clients := make([]*tcpClient, cfg.Clients)
	defer func() {
		for _, cl := range clients {
			if cl != nil && cl.conn != nil {
				cl.conn.Close()
			}
		}
	}()
	var wg sync.WaitGroup
	dialErrs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		clients[c] = &tcpClient{stream: c % cfg.Streams, churner: c%4 == 0}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := transport.DialConfig(addr, transport.Config{WireVersion: cfg.WireVersion})
			if err != nil {
				dialErrs[c] = err
				return
			}
			clients[c].conn = conn
			dialErrs[c] = subscribe(clients[c], 0)
		}(c)
	}
	wg.Wait()
	for c, err := range dialErrs {
		if err != nil {
			return nil, fmt.Errorf("load: client %d: %w", c, err)
		}
	}
	if err := clients[0].conn.Quiesce(); err != nil {
		return nil, err
	}
	statsBefore, err := clients[0].conn.Stats()
	if err != nil {
		return nil, err
	}

	events := cfg.targetEvents()
	var probe memProbe
	probe.start()
	pacer := NewPacer(cfg.Rate)
	rec.start = pacer.Start()
	seqs := make([]int64, cfg.Streams)
	for i := 0; i < events; i++ {
		if i == events/2 && i > 0 {
			// Churn burst at a drained boundary: quiesce, cancel and
			// resubmit every churner, quiesce again so the replacement
			// groups' advertisements settle, then amend the schedule.
			if err := clients[0].conn.Quiesce(); err != nil {
				return nil, err
			}
			for _, cl := range clients {
				if !cl.churner {
					continue
				}
				cl.track.Close()
				if err := cl.conn.Cancel(cl.tag); err != nil {
					return nil, fmt.Errorf("load: churn cancel: %w", err)
				}
				if err := subscribe(cl, seqs[cl.stream]); err != nil {
					return nil, fmt.Errorf("load: churn resubmit: %w", err)
				}
			}
			if err := clients[0].conn.Quiesce(); err != nil {
				return nil, err
			}
			pacer.Shift()
		}
		intended := pacer.Tick()
		k := i % cfg.Streams
		if err := pubs[k].publish(loadTuple(pubs[k].schema, seqs[k], intended, pacer.Elapsed())); err != nil {
			return nil, fmt.Errorf("load: publish: %w", err)
		}
		seqs[k]++
	}
	pubElapsed := pacer.Elapsed()

	if err := clients[0].conn.Quiesce(); err != nil {
		return nil, err
	}
	waitUntil(time.Now().Add(cfg.DrainTimeout), func() bool {
		for _, cl := range clients {
			if !cl.track.Settled(seqs[cl.stream] - 1) {
				return false
			}
		}
		return true
	})
	total := pacer.Elapsed()
	allocs := probe.allocsPer(rec.Delivered())
	if err, _ := extractErr.Load().(error); err != nil {
		return nil, err
	}

	for _, cl := range clients {
		if final := seqs[cl.stream] - 1; final >= 0 {
			cl.track.AddTailLoss(final)
		}
	}
	lost, dups := rec.Totals()
	statsAfter, err := clients[0].conn.Stats()
	if err != nil {
		return nil, err
	}

	res := baseResults(pacer, rec, pubElapsed, total)
	res.Lost = lost
	res.Duplicated = dups
	res.AllocsPerResult = allocs
	return &Report{
		Area: "clients",
		Config: ReportConfig{
			Backend:     "tcp",
			RatePerSec:  cfg.Rate,
			DurationS:   cfg.Duration.Seconds(),
			Events:      events,
			Clients:     cfg.Clients,
			Streams:     cfg.Streams,
			Workers:     cfg.Workers,
			Seed:        cfg.Seed,
			WireVersion: clients[0].conn.WireVersion(),
			Shifts:      pacer.Shifts(),
		},
		Results: res,
		Stages:  stageReports(statsBefore, statsAfter),
	}, nil
}
