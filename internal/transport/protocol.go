package transport

// The wire protocol: clients send Requests; the server answers each with
// one Response carrying the same ID, and additionally pushes Response
// messages with Kind = MsgResult for every result tuple of subscribed
// queries. All messages are gob-encoded on a single TCP connection; the
// server serialises writes.

// MsgKind discriminates protocol messages.
type MsgKind uint8

// Protocol message kinds.
const (
	// Requests.
	MsgRegister MsgKind = iota // register a source stream (WireInfo)
	MsgPublish                 // publish one tuple (WireTuple)
	MsgSubmit                  // submit a CQL query (CQL)
	MsgCancel                  // cancel a query (QueryTag)
	MsgStats                   // fetch system statistics
	// Responses.
	MsgOK     // generic success
	MsgError  // Error carries the message
	MsgResult // asynchronous result delivery (QueryTag + Tuple)
)

// Request is a client → server message.
type Request struct {
	ID   uint64
	Kind MsgKind
	// Register
	Info WireInfo
	Node int
	// Publish
	Tuple WireTuple
	// Submit
	CQL      string
	UserNode int
	// Cancel
	QueryTag string
}

// Response is a server → client message.
type Response struct {
	ID   uint64 // echoes the request ID; 0 for pushed results
	Kind MsgKind
	// Error
	Error string
	// Submit success
	QueryTag string
	// Result push
	Tuple  WireTuple
	Schema WireSchema
	// Stats
	Stats SystemStats
}

// SystemStats summarises a running daemon.
type SystemStats struct {
	Queries        int
	Processors     int
	GroupsPerProc  []int
	LoadPerProc    []int
	TotalDataBytes int64
}
