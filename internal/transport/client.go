package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"cosmos/internal/stream"
)

// Client is a COSMOS service client: it registers streams, publishes
// tuples, and submits continuous queries over one TCP connection.
// Result tuples arrive asynchronously on per-query callbacks; a
// per-query end callback fires exactly once when the subscription
// terminates (local cancel, server shutdown, or connection loss).
type Client struct {
	conn net.Conn

	// wmu serialises gob writes. It is separate from mu so a blocking
	// Encode (full client→server TCP buffer) never holds the state lock
	// the read loop needs — the split the server's connWriter makes.
	wmu sync.Mutex
	enc *gob.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	// pendingSubs holds the callback pair of an in-flight Submit,
	// keyed by request ID. The READ LOOP moves it into subs the moment
	// it processes the MsgOK — before it decodes any later frame — so a
	// result or end push right behind the response can never slip
	// through an unregistered window.
	pendingSubs map[uint64]clientSub
	subs        map[string]clientSub
	closed      bool
	closeErr    error
	closeOnce   sync.Once
	done        chan struct{}
}

// clientSub is the callback pair of one live subscription.
type clientSub struct {
	onResult func(stream.Tuple)
	onEnd    func(error)
}

// Dial connects to a cosmosd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:        conn,
		enc:         gob.NewEncoder(conn),
		pending:     map[uint64]chan *Response{},
		pendingSubs: map[uint64]clientSub{},
		subs:        map[string]clientSub{},
		done:        make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close terminates the connection; outstanding calls fail and every live
// subscription ends cleanly (onEnd(nil)). Idempotent.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		subs := c.subs
		c.subs = map[string]clientSub{}
		c.mu.Unlock()
		// End subscriptions before the read loop can observe the closed
		// connection, so a user-initiated Close reads as a clean end,
		// not a connection error.
		for _, sub := range subs {
			if sub.onEnd != nil {
				sub.onEnd(nil)
			}
		}
		c.conn.Close()
		<-c.done
	})
	return nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	dec := gob.NewDecoder(c.conn)
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			c.closeErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			subs := c.subs
			c.subs = map[string]clientSub{}
			closed := c.closed
			c.mu.Unlock()
			for _, sub := range subs {
				if sub.onEnd != nil {
					if closed {
						sub.onEnd(nil)
					} else {
						sub.onEnd(fmt.Errorf("transport: connection lost: %v", err))
					}
				}
			}
			return
		}
		switch resp.Kind {
		case MsgResult:
			c.handleResult(&resp)
			continue
		case MsgEnd:
			c.mu.Lock()
			sub, ok := c.subs[resp.QueryTag]
			delete(c.subs, resp.QueryTag)
			c.mu.Unlock()
			if ok && sub.onEnd != nil {
				var err error
				if resp.Error != "" {
					err = fmt.Errorf("transport: server: %s", resp.Error)
				}
				sub.onEnd(err)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		var lateEnd func(error)
		if cs, ok := c.pendingSubs[resp.ID]; ok {
			delete(c.pendingSubs, resp.ID)
			switch {
			case resp.Kind != MsgOK || resp.QueryTag == "":
				// Submit failed; no subscription came to exist.
			case c.closed:
				// Close already ended every subscription; ending this
				// one here keeps the exactly-once onEnd contract.
				lateEnd = cs.onEnd
			default:
				c.subs[resp.QueryTag] = cs
			}
		}
		c.mu.Unlock()
		if lateEnd != nil {
			lateEnd(nil)
		}
		if ch != nil {
			r := resp
			ch <- &r
		}
	}
}

func (c *Client) handleResult(resp *Response) {
	schema, err := FromWireSchema(resp.Schema)
	if err != nil {
		return
	}
	t, err := FromWireTuple(resp.Tuple, schema)
	if err != nil {
		return
	}
	tag := resp.QueryTag
	if tag == "" {
		tag = schema.Stream // result stream name == query tag
	}
	c.mu.Lock()
	sub := c.subs[tag]
	c.mu.Unlock()
	if sub.onResult != nil {
		sub.onResult(t)
	}
}

// call sends a request and waits for its response.
func (c *Client) call(req *Request) (*Response, error) { return c.callSub(req, nil) }

// callSub is call with an optional subscription callback pair: the read
// loop registers it under the response's query tag atomically with
// processing the MsgOK, so no later frame can miss it.
func (c *Client) callSub(req *Request, sub *clientSub) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: client closed")
	}
	if c.closeErr != nil {
		// The read loop has exited (server gone): no response can ever
		// arrive, so fail instead of registering a waiter.
		err := c.closeErr
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: connection lost: %v", err)
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *Response, 1)
	c.pending[req.ID] = ch
	if sub != nil {
		c.pendingSubs[req.ID] = *sub
	}
	c.mu.Unlock()
	c.wmu.Lock()
	err := c.enc.Encode(req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		delete(c.pendingSubs, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("transport: connection lost: %v", c.closeErr)
	}
	if resp.Kind == MsgError {
		return nil, fmt.Errorf("transport: server: %s", resp.Error)
	}
	return resp, nil
}

// Register announces a source stream hosted at an overlay node.
func (c *Client) Register(info *stream.Info, node int) error {
	_, err := c.call(&Request{Kind: MsgRegister, Info: ToWireInfo(info), Node: node})
	return err
}

// Publish sends one tuple of a registered stream.
func (c *Client) Publish(t stream.Tuple) error {
	_, err := c.call(&Request{Kind: MsgPublish, Tuple: ToWireTuple(t)})
	return err
}

// Submit registers a continuous query for a user at an overlay node;
// results stream into onResult (which runs on the client's read-loop
// goroutine — per query, call order is wire order) until the
// subscription ends. onEnd, which may be nil, fires exactly once: after
// a local Cancel or Close (nil error), a server-side end such as a
// graceful daemon shutdown (nil error), or a connection loss (the
// error).
func (c *Client) Submit(cqlText string, userNode int, onResult func(stream.Tuple), onEnd func(error)) (string, error) {
	resp, err := c.callSub(
		&Request{Kind: MsgSubmit, CQL: cqlText, UserNode: userNode},
		&clientSub{onResult: onResult, onEnd: onEnd})
	if err != nil {
		return "", err
	}
	return resp.QueryTag, nil
}

// Cancel stops a query; its onEnd callback fires with a nil error.
// Cancelling an already-ended or unknown subscription returns the
// server's error (or the closed-client error) without side effects.
func (c *Client) Cancel(tag string) error {
	_, err := c.call(&Request{Kind: MsgCancel, QueryTag: tag})
	c.mu.Lock()
	sub, ok := c.subs[tag]
	delete(c.subs, tag)
	c.mu.Unlock()
	if ok && sub.onEnd != nil {
		sub.onEnd(nil)
	}
	return err
}

// Stats fetches daemon statistics.
func (c *Client) Stats() (SystemStats, error) {
	resp, err := c.call(&Request{Kind: MsgStats})
	if err != nil {
		return SystemStats{}, err
	}
	return resp.Stats, nil
}

// Catalog fetches the daemon's stream catalog, sorted by stream name.
func (c *Client) Catalog() ([]*stream.Info, error) {
	resp, err := c.call(&Request{Kind: MsgCatalog})
	if err != nil {
		return nil, err
	}
	infos := make([]*stream.Info, 0, len(resp.Infos))
	for _, w := range resp.Infos {
		info, err := FromWireInfo(w)
		if err != nil {
			return nil, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// Quiesce runs the server-side stabilisation barrier: it returns after
// no tuple is in flight anywhere in the deployment. Meaningful only
// while no client is concurrently publishing; meant for tests and
// readouts, never the steady-state path.
func (c *Client) Quiesce() error {
	_, err := c.call(&Request{Kind: MsgQuiesce})
	return err
}
