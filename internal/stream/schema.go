package stream

import (
	"fmt"
	"sort"
	"strings"
)

// Field describes one attribute of a stream schema.
type Field struct {
	Name string
	Kind Kind
	// AvgLen is the assumed average wire length in bytes for string
	// attributes; zero means DefaultStringWidth. Ignored for other kinds.
	AvgLen int
}

// Width returns the assumed wire width of the field in bytes.
func (f Field) Width() int {
	if f.Kind == KindString && f.AvgLen > 0 {
		return f.AvgLen
	}
	return f.Kind.Width()
}

// Schema is the ordered attribute list of a stream. Each stream in COSMOS
// is assigned a unique name (paper §3); the schema is disseminated either
// by flooding or through the DHT keyed on that name.
type Schema struct {
	// Stream is the unique stream name the schema belongs to.
	Stream string
	Fields []Field

	index map[string]int // lazily built name → position
}

// NewSchema builds a schema after validating that field names are unique
// and non-empty.
func NewSchema(streamName string, fields ...Field) (*Schema, error) {
	if streamName == "" {
		return nil, fmt.Errorf("stream: empty stream name")
	}
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("stream %s: empty field name", streamName)
		}
		if f.Kind == KindInvalid {
			return nil, fmt.Errorf("stream %s: field %s has invalid kind", streamName, f.Name)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("stream %s: duplicate field %s", streamName, f.Name)
		}
		seen[f.Name] = true
	}
	s := &Schema{Stream: streamName, Fields: fields}
	s.buildIndex()
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and
// statically known schemas.
func MustSchema(streamName string, fields ...Field) *Schema {
	s, err := NewSchema(streamName, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// buildIndex populates the name→column map, once per schema.
//
//cosmos:hotpath-ok — amortized lazy init: runs once per schema lifetime, never per tuple
func (s *Schema) buildIndex() {
	s.index = make(map[string]int, len(s.Fields))
	for i, f := range s.Fields {
		s.index[f.Name] = i
	}
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Fields) }

// ColIndex returns the position of the named attribute, or -1.
//
//cosmos:hotpath
func (s *Schema) ColIndex(name string) int {
	if s.index == nil {
		s.buildIndex()
	}
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.ColIndex(name) >= 0 }

// FieldByName returns the named field.
func (s *Schema) FieldByName(name string) (Field, bool) {
	i := s.ColIndex(name)
	if i < 0 {
		return Field{}, false
	}
	return s.Fields[i], true
}

// AttrNames returns the attribute names in schema order.
func (s *Schema) AttrNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Project returns a new schema retaining only the named attributes, in the
// order given. It errors on unknown attributes.
func (s *Schema) Project(names []string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		f, ok := s.FieldByName(n)
		if !ok {
			return nil, fmt.Errorf("stream %s: no attribute %s", s.Stream, n)
		}
		fields = append(fields, f)
	}
	return NewSchema(s.Stream, fields...)
}

// ProjectIdx resolves a projection to its compiled form: the projected
// schema plus the source column index of each projected attribute, for
// use with Tuple.ProjectIdx. It errors on unknown attributes.
func (s *Schema) ProjectIdx(names []string) (*Schema, []int, error) {
	fields := make([]Field, len(names))
	idx := make([]int, len(names))
	for i, n := range names {
		j := s.ColIndex(n)
		if j < 0 {
			return nil, nil, fmt.Errorf("stream %s: no attribute %s", s.Stream, n)
		}
		fields[i], idx[i] = s.Fields[j], j
	}
	proj, err := NewSchema(s.Stream, fields...)
	if err != nil {
		return nil, nil, err
	}
	return proj, idx, nil
}

// TupleWidth returns the assumed wire width in bytes of a full tuple of
// this schema (payload only; framing overhead is accounted separately by
// the cost model).
func (s *Schema) TupleWidth() int {
	w := 0
	for _, f := range s.Fields {
		w += f.Width()
	}
	return w
}

// Rename returns a copy of the schema carrying a different stream name.
// Used when a processor advertises a result stream under a fresh unique
// name (paper §4).
func (s *Schema) Rename(streamName string) *Schema {
	fields := make([]Field, len(s.Fields))
	copy(fields, s.Fields)
	out := &Schema{Stream: streamName, Fields: fields}
	out.buildIndex()
	return out
}

// Equal reports deep equality of stream name and fields.
//
//cosmos:hotpath
func (s *Schema) Equal(t *Schema) bool {
	if s == nil || t == nil {
		return s == t
	}
	if s.Stream != t.Stream || len(s.Fields) != len(t.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != t.Fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "Name(field kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Stream)
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// JoinSchema builds the schema of a join result stream. Attribute names are
// qualified with the given aliases ("O.itemID") to keep them unambiguous in
// representative-query result streams, matching the profiles in the paper
// (p2 projects O.itemID, O.timestamp, C.buyerID, C.timestamp).
func JoinSchema(resultName string, aliases []string, schemas []*Schema) (*Schema, error) {
	if len(aliases) != len(schemas) {
		return nil, fmt.Errorf("stream: %d aliases for %d schemas", len(aliases), len(schemas))
	}
	var fields []Field
	for i, sc := range schemas {
		for _, f := range sc.Fields {
			fields = append(fields, Field{
				Name:   aliases[i] + "." + f.Name,
				Kind:   f.Kind,
				AvgLen: f.AvgLen,
			})
		}
	}
	return NewSchema(resultName, fields...)
}

// SortedAttrSet returns a defensive sorted copy of a set of attribute
// names; used to build canonical signatures.
func SortedAttrSet(attrs []string) []string {
	out := make([]string, len(attrs))
	copy(out, attrs)
	sort.Strings(out)
	return out
}
