package exec_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmos/internal/cbn"
	"cosmos/internal/cql"
	"cosmos/internal/exec"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// seqRegistry builds a one-column integer stream for ordering checks.
func seqRegistry(t *testing.T) (*stream.Registry, *stream.Schema) {
	t.Helper()
	reg := stream.NewRegistry()
	schema := stream.MustSchema("S", stream.Field{Name: "seq", Kind: stream.KindInt})
	if err := reg.Register(&stream.Info{Schema: schema, Rate: 100}); err != nil {
		t.Fatal(err)
	}
	return reg, schema
}

// installSeqPlans installs two pass-all plans over S emitting to res0 /
// res1; install order pins q0 to worker 0 and q1 to worker 1.
func installSeqPlans(t *testing.T, rt *exec.Runtime, reg *stream.Registry) {
	t.Helper()
	for i, res := range []string{"res0", "res1"} {
		b, err := cql.AnalyzeString("SELECT seq AS v FROM S [Now]", reg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Install([]string{"q0", "q1"}[i], b, res); err != nil {
			t.Fatal(err)
		}
	}
}

// seqCollector records delivered seq values per result stream.
type seqCollector struct {
	mu sync.Mutex
	by map[string][]int64
}

func newSeqCollector() *seqCollector { return &seqCollector{by: map[string][]int64{}} }

func (c *seqCollector) onTuple(t stream.Tuple) {
	c.mu.Lock()
	c.by[t.Schema.Stream] = append(c.by[t.Schema.Stream], t.MustGet("v").AsInt())
	c.mu.Unlock()
}

func (c *seqCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.by {
		n += len(s)
	}
	return n
}

func (c *seqCollector) checkComplete(t *testing.T, n int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, res := range []string{"res0", "res1"} {
		seq := c.by[res]
		if len(seq) != n {
			t.Fatalf("%s: delivered %d tuples, want %d (dropped under backpressure)", res, len(seq), n)
		}
		for i, v := range seq {
			if v != int64(i) {
				t.Fatalf("%s: position %d carries seq %d (reordered)", res, i, v)
			}
		}
	}
}

// TestWorkerBackpressureThrottlesNotDrops: exec workers publishing into
// a full broker channel must block — throttled by the network — and
// resume without losing or reordering a single emission once the broker
// drains. The broker is held stalled by not starting the net: with
// inbox capacity 2, the queued subscription leaves one slot, so at most
// one publish completes and both workers sit blocked in their sinks.
func TestWorkerBackpressureThrottlesNotDrops(t *testing.T) {
	net := cbn.NewLiveNet(1, cbn.WithInboxCap(2))
	reg, schema := seqRegistry(t)

	sub, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	col := newSeqCollector()
	sub.SetOnTuple(col.onTuple)
	prof := profile.New()
	prof.AddStream("res0", nil, nil)
	prof.AddStream("res1", nil, nil)
	sub.Subscribe(prof) // parked in the stalled broker's inbox, ahead of the data

	var egress [2]*cbn.LiveClient
	for i := range egress {
		if egress[i], err = net.AttachClient(0); err != nil {
			t.Fatal(err)
		}
	}
	var published atomic.Int64
	rt := exec.New(exec.Config{
		Workers:  2,
		QueueLen: 4,
		EmitForWorker: func(worker int) exec.Sink {
			c := egress[worker]
			return func(tp stream.Tuple) {
				_ = c.Publish(tp) // blocks while the inbox is full
				published.Add(1)
			}
		},
	})
	defer rt.Close()
	installSeqPlans(t, rt, reg)

	const n = 50
	feedDone := make(chan struct{})
	go func() {
		defer close(feedDone)
		for i := 0; i < n; i++ {
			_ = rt.Consume(stream.MustTuple(schema, stream.Timestamp(i), stream.Int(int64(i))))
		}
	}()

	// Grace period: the pipeline must wedge against the full inbox, not
	// drop. One slot was free, so at most one publish may complete.
	time.Sleep(50 * time.Millisecond)
	if got := published.Load(); got > 1 {
		t.Fatalf("%d emissions entered a stalled broker with one free slot", got)
	}
	if col.count() != 0 {
		t.Fatalf("%d tuples delivered before the broker ran", col.count())
	}

	net.Start()
	defer net.Stop()
	<-feedDone
	rt.Barrier()
	net.Quiesce()
	if got := published.Load(); got != 2*n {
		t.Fatalf("published %d emissions, want %d", got, 2*n)
	}
	col.checkComplete(t, n)
}

// TestWorkerBackpressureUnderLoad sustains throttling on a running
// network: inbox capacity 1 forces workers and brokers into lockstep
// across an overlay hop, and every emission must still arrive exactly
// once, in per-plan order, race-clean.
func TestWorkerBackpressureUnderLoad(t *testing.T) {
	net := cbn.NewLiveNet(2, cbn.WithInboxCap(1))
	if err := net.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	reg, schema := seqRegistry(t)

	sub, err := net.AttachClient(1)
	if err != nil {
		t.Fatal(err)
	}
	col := newSeqCollector()
	sub.SetOnTuple(col.onTuple)

	var egress [2]*cbn.LiveClient
	for i := range egress {
		if egress[i], err = net.AttachClient(0); err != nil {
			t.Fatal(err)
		}
	}
	net.Start()
	defer net.Stop()
	// Advertise the result streams so the cross-node subscription routes
	// toward the publishers, then settle the control plane.
	egress[0].Advertise("res0")
	egress[1].Advertise("res1")
	net.Quiesce()
	prof := profile.New()
	prof.AddStream("res0", nil, nil)
	prof.AddStream("res1", nil, nil)
	sub.Subscribe(prof)
	net.Quiesce()

	rt := exec.New(exec.Config{
		Workers:  2,
		QueueLen: 2,
		EmitForWorker: func(worker int) exec.Sink {
			c := egress[worker]
			return func(tp stream.Tuple) { _ = c.Publish(tp) }
		},
	})
	defer rt.Close()
	installSeqPlans(t, rt, reg)

	const n = 300
	for i := 0; i < n; i++ {
		_ = rt.Consume(stream.MustTuple(schema, stream.Timestamp(i), stream.Int(int64(i))))
	}
	rt.Barrier()
	net.Quiesce()
	col.checkComplete(t, n)
}

// TestEmitForWorkerRouting: each plan's emissions leave through its
// owning worker's sink only, and the synchronous mode ignores
// EmitForWorker in favour of the shared Emit sink.
func TestEmitForWorkerRouting(t *testing.T) {
	reg, schema := seqRegistry(t)
	var mu sync.Mutex
	seen := map[int]map[string]bool{}
	rt := exec.New(exec.Config{
		Workers: 2,
		EmitForWorker: func(worker int) exec.Sink {
			return func(tp stream.Tuple) {
				mu.Lock()
				if seen[worker] == nil {
					seen[worker] = map[string]bool{}
				}
				seen[worker][tp.Schema.Stream] = true
				mu.Unlock()
			}
		},
	})
	installSeqPlans(t, rt, reg)
	for i := 0; i < 10; i++ {
		_ = rt.Consume(stream.MustTuple(schema, stream.Timestamp(i), stream.Int(int64(i))))
	}
	rt.Barrier()
	rt.Close()
	mu.Lock()
	defer mu.Unlock()
	// Install order pins q0 (res0) to worker 0 and q1 (res1) to worker 1.
	if len(seen[0]) != 1 || !seen[0]["res0"] {
		t.Errorf("worker 0 sink saw %v, want only res0", seen[0])
	}
	if len(seen[1]) != 1 || !seen[1]["res1"] {
		t.Errorf("worker 1 sink saw %v, want only res1", seen[1])
	}

	shared := 0
	perWorker := 0
	sync := exec.New(exec.Config{
		Workers: 0,
		Emit:    func(stream.Tuple) { shared++ },
		EmitForWorker: func(int) exec.Sink {
			return func(stream.Tuple) { perWorker++ }
		},
	})
	defer sync.Close()
	installSeqPlans(t, sync, reg)
	_ = sync.Consume(stream.MustTuple(schema, 1, stream.Int(1)))
	if shared != 2 || perWorker != 0 {
		t.Errorf("sync mode used sinks (shared=%d perWorker=%d), want shared=2 perWorker=0", shared, perWorker)
	}
}
