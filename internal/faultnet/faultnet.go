// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seed-driven fault injection for resilience tests: connection drops at
// frame boundaries and mid-frame, added latency, stalls, and
// listener-level partitions. Any test that speaks TCP can route its
// traffic through a Proxy (or wrap its own listener) and get
// reproducible chaos from a seed instead of flaky timing tricks.
//
// Faults are decided by a single rand.Rand guarded by a mutex, so a
// given (seed, traffic shape) produces the same fault schedule across
// runs up to goroutine interleaving. Kill points are drawn uniformly
// from [KillEveryWrites/2, 3*KillEveryWrites/2) so resumes land at
// varied stream positions rather than a fixed cadence.
package faultnet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the injected faults. The zero value injects nothing —
// the wrappers become transparent pass-throughs.
type Config struct {
	// Seed drives all randomised fault decisions. Two runs with the
	// same seed and traffic shape see the same fault schedule.
	Seed int64

	// KillEveryWrites, when > 0, severs the connection after roughly
	// this many server→client writes (frames). The exact count is
	// redrawn per connection from [n/2, 3n/2) so kills don't align
	// with a fixed stream position.
	KillEveryWrites int

	// MidFrameFraction is the probability (0..1) that a kill truncates
	// the final frame partway through instead of cutting cleanly at a
	// frame boundary — the receiver sees a short read mid-message.
	MidFrameFraction float64

	// CutAtBytes, when > 0, severs each connection after exactly this
	// many server→client bytes: the write that crosses the offset is
	// truncated at the precise byte and the connection killed. Unlike
	// KillEveryWrites (whole writes, jittered budgets), the cut lands
	// at a deterministic byte offset, so a test can provably truncate
	// inside a length-prefixed frame — the receiver holds a valid
	// prefix of the stream and nothing more.
	CutAtBytes int64

	// Latency delays every forwarded write by this much (both ways).
	Latency time.Duration

	// StallEvery, when > 0, pauses forwarding for StallFor after
	// roughly that many writes without killing the connection —
	// exercising heartbeat/idle-deadline paths.
	StallEvery int
	// StallFor is the stall duration (default 0 disables stalls even
	// when StallEvery is set).
	StallFor time.Duration
}

// ErrInjected is returned by wrapped conns whose connection was severed
// by an injected fault.
var ErrInjected = errors.New("faultnet: injected connection failure")

// injector owns the shared randomness and runtime switches for one
// Proxy or wrapped listener.
type injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	disabled    atomic.Bool // DisableFaults: stop injecting new faults
	partitioned atomic.Bool // Partition: refuse/sever all connections
	kills       atomic.Int64
}

func newInjector(cfg Config) *injector {
	return &injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// drawKillBudget picks the number of writes until the next kill for a
// fresh connection, or 0 when kills are disabled.
func (in *injector) drawKillBudget() int {
	n := in.cfg.KillEveryWrites
	if n <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	lo := n / 2
	if lo < 1 {
		lo = 1
	}
	return lo + in.rng.Intn(n) // [n/2, 3n/2)
}

func (in *injector) drawMidFrame() bool {
	if in.cfg.MidFrameFraction <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < in.cfg.MidFrameFraction
}

// drawTruncation picks how many bytes of an n-byte frame survive a
// mid-frame kill (at least 1, at most n-1 so the cut is visible).
func (in *injector) drawTruncation(n int) int {
	if n <= 1 {
		return n
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return 1 + in.rng.Intn(n-1)
}

func (in *injector) active() bool {
	return !in.disabled.Load()
}

// Conn wraps a net.Conn with fault injection on the Write path. Reads
// pass through untouched; severing the underlying conn surfaces on
// both directions naturally.
type Conn struct {
	net.Conn
	in *injector

	writes     atomic.Int64
	sent       atomic.Int64 // bytes forwarded, for CutAtBytes
	killBudget atomic.Int64 // writes remaining until an injected kill; <=0 disarmed
	killed     atomic.Bool
}

// WrapConn applies a fault profile to an existing connection. The
// returned conn shares the injector's seed stream with any sibling
// conns from the same listener/proxy.
func wrapConn(c net.Conn, in *injector) *Conn {
	fc := &Conn{Conn: c, in: in}
	fc.killBudget.Store(int64(in.drawKillBudget()))
	return fc
}

// Write forwards b, possibly delayed, truncated, or refused entirely
// according to the fault schedule.
func (c *Conn) Write(b []byte) (int, error) {
	if c.killed.Load() {
		return 0, ErrInjected
	}
	if c.in.partitioned.Load() && c.in.active() {
		c.kill()
		return 0, ErrInjected
	}
	if d := c.in.cfg.Latency; d > 0 && c.in.active() {
		time.Sleep(d)
	}
	if c.in.active() {
		if se, sf := c.in.cfg.StallEvery, c.in.cfg.StallFor; se > 0 && sf > 0 {
			if c.writes.Add(1)%int64(se) == 0 {
				time.Sleep(sf)
			}
		} else {
			c.writes.Add(1)
		}
		if budget := c.killBudget.Load(); budget > 0 {
			if c.killBudget.Add(-1) <= 0 {
				return c.killWrite(b)
			}
		}
		if cut := c.in.cfg.CutAtBytes; cut > 0 {
			sent := c.sent.Load()
			if sent+int64(len(b)) >= cut {
				// This write crosses the cut offset: forward the exact
				// prefix that reaches it, then sever.
				if keep := cut - sent; keep > 0 {
					_, _ = c.Conn.Write(b[:keep])
					c.sent.Add(keep)
				}
				c.kill()
				return 0, ErrInjected
			}
			c.sent.Add(int64(len(b)))
		}
	}
	return c.Conn.Write(b)
}

// killWrite executes an injected kill: either drop the frame whole or
// deliver a truncated prefix, then sever the connection.
func (c *Conn) killWrite(b []byte) (int, error) {
	if c.in.drawMidFrame() && len(b) > 1 {
		keep := c.in.drawTruncation(len(b))
		_, _ = c.Conn.Write(b[:keep])
	}
	c.kill()
	return 0, ErrInjected
}

func (c *Conn) kill() {
	if c.killed.CompareAndSwap(false, true) {
		c.in.kills.Add(1)
		_ = c.Conn.Close()
	}
}

// Listener wraps a net.Listener so every accepted conn carries the
// fault profile. Use it to fault-inject a server in-process; use Proxy
// to fault-inject a client's view of a remote server.
type Listener struct {
	net.Listener
	in *injector
}

// WrapListener applies a fault profile to a listener.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, in: newInjector(cfg)}
}

// Accept waits for the next connection and wraps it. While partitioned,
// accepted connections are closed immediately.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.in.partitioned.Load() {
			_ = c.Close()
			continue
		}
		return wrapConn(c, l.in), nil
	}
}

// Kills reports how many connections the fault schedule has severed.
func (l *Listener) Kills() int { return int(l.in.kills.Load()) }

// Partition makes the listener drop new and existing traffic until
// Heal is called.
func (l *Listener) Partition() { l.in.partitioned.Store(true) }

// Heal ends a partition.
func (l *Listener) Heal() { l.in.partitioned.Store(false) }

// DisableFaults stops injecting new faults (existing connections keep
// flowing); used by tests to let a chaotic phase settle.
func (l *Listener) DisableFaults() { l.in.disabled.Store(true) }

// Proxy is a TCP proxy that forwards between clients and a target
// address, injecting faults on the server→client path (where result
// frames flow). Dial the proxy's Addr instead of the real server.
type Proxy struct {
	in     *injector
	ln     net.Listener
	target string

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu; live client- and server-side conns
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// NewProxy listens on 127.0.0.1:0 and forwards every accepted
// connection to target with cfg's fault profile applied to the
// server→client byte stream.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{in: newInjector(cfg), ln: ln, target: target, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address; point clients here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Kills reports how many connections the fault schedule has severed.
func (p *Proxy) Kills() int { return int(p.in.kills.Load()) }

// Partition severs all live connections and refuses new ones until
// Heal; dials to the proxy still succeed but die immediately, like a
// network that eats packets.
func (p *Proxy) Partition() {
	p.in.partitioned.Store(true)
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
}

// Heal ends a partition; new connections flow again.
func (p *Proxy) Heal() { p.in.partitioned.Store(false) }

// DisableFaults stops injecting new faults so in-flight traffic can
// settle; existing connections keep flowing.
func (p *Proxy) DisableFaults() { p.in.disabled.Store(true) }

// Close shuts the proxy down and severs everything through it.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.in.partitioned.Load() {
			_ = client.Close()
			continue
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = client.Close()
			_ = server.Close()
			return
		}
		p.conns[client] = struct{}{}
		p.conns[server] = struct{}{}
		p.mu.Unlock()
		// Faults apply to the server→client direction: the injector
		// wraps the client-side conn, and the pipe from server to
		// client writes through it.
		faulty := wrapConn(client, p.in)
		p.wg.Add(2)
		go p.pipe(faulty, server, client, server) // server → client (faulty)
		go p.pipe(server, client, client, server) // client → server (clean)
	}
}

// pipe copies src→dst until either side dies, then severs both so the
// endpoints see the failure promptly.
func (p *Proxy) pipe(dst io.Writer, src net.Conn, client, server net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	_, _ = io.CopyBuffer(dst, src, buf)
	_ = client.Close()
	_ = server.Close()
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
}
