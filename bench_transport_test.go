// Transport result-path benchmarks: the v1(gob) vs v2(binary) A/B on
// one Dial connection, and a sustained-load run that records latency
// percentiles to BENCH_transport.json (scripts/bench_transport.sh).
//
// Both drive the cosmosd assembly — LiveSystem behind transport.Server —
// with publishes entering through the embedded client, so the timed
// path is publish → eval → wire → client callback and the wire codec
// dominates the per-result cost (eval is shared across the fan-out).
package cosmos_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cosmos"
	"cosmos/internal/core"
	"cosmos/internal/obs"
	"cosmos/internal/sensordata"
	"cosmos/internal/transport"
)

// benchFanout is how many subscriptions share the one benched
// connection; each published tuple yields this many wire results, so
// upstream (publish + eval) cost is amortised 1/benchFanout per result.
const benchFanout = 16

// benchHarness is one live server + embedded publisher + one remote
// subscriber connection with benchFanout counting subscriptions.
type benchHarness struct {
	src      cosmos.Source
	sub      *transport.Client
	received atomic.Int64
	target   atomic.Int64
	notify   chan struct{}
	onResult func(cosmos.Tuple)
	cleanup  []func()
}

func (h *benchHarness) close() {
	for i := len(h.cleanup) - 1; i >= 0; i-- {
		h.cleanup[i]()
	}
}

// startBenchHarness wires the assembly at the given wire version.
func startBenchHarness(tb testing.TB, wire, ingestBatch int) *benchHarness {
	tb.Helper()
	h := &benchHarness{notify: make(chan struct{}, 1)}
	opts := core.Options{Nodes: 16, Seed: 3, ExecWorkers: 2, IngestBatch: ingestBatch}
	ls, err := core.NewLiveSystem(opts)
	if err != nil {
		tb.Fatal(err)
	}
	srv := transport.NewServer(ls.System, transport.WithSystemClose(ls.Close))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			tb.Errorf("serve: %v", err)
		}
	}()
	h.cleanup = append(h.cleanup, func() { srv.Close(); <-done })

	pub := cosmos.EmbedLive(ls)
	src, err := pub.RegisterStream(sensordata.Info(0), 1)
	if err != nil {
		tb.Fatal(err)
	}
	h.src = src

	sub, err := transport.DialConfig(ln.Addr().String(), transport.Config{WireVersion: wire})
	if err != nil {
		tb.Fatal(err)
	}
	h.cleanup = append(h.cleanup, func() { sub.Close() })
	h.sub = sub
	if got := sub.WireVersion(); got != wire {
		tb.Fatalf("negotiated wire v%d, want v%d", got, wire)
	}
	for i := 0; i < benchFanout; i++ {
		_, err := sub.Submit("SELECT station, temperature FROM Sensor00 [Now]", 3+i%8,
			func(tp cosmos.Tuple, _ uint64) {
				if h.onResult != nil {
					h.onResult(tp)
				}
				if n := h.received.Add(1); n >= h.target.Load() {
					select {
					case h.notify <- struct{}{}:
					default:
					}
				}
			}, nil, nil)
		if err != nil {
			tb.Fatal(err)
		}
	}
	// Settle subscription propagation before traffic starts.
	if err := pub.Quiesce(); err != nil {
		tb.Fatal(err)
	}
	return h
}

// waitResults blocks until the harness has delivered at least n
// results; the delivery callback signals notify when the target is
// crossed, so nothing spins (this host may have a single CPU).
func (h *benchHarness) waitResults(tb testing.TB, n int64) {
	tb.Helper()
	h.target.Store(n)
	deadline := time.Now().Add(2 * time.Minute)
	for h.received.Load() < n {
		select {
		case <-h.notify:
		case <-time.After(time.Until(deadline)):
			tb.Fatalf("stalled at %d/%d results", h.received.Load(), n)
		}
	}
}

// BenchmarkDialResultPath is the tentpole A/B: identical fan-out
// workload over the v1 gob wire and the v2 binary wire; one op = one
// result delivered to a client callback. Compare ns/op and allocs/op
// between the sub-benchmarks.
func BenchmarkDialResultPath(b *testing.B) {
	for _, wire := range []int{transport.WireV1, transport.WireV2} {
		b.Run(fmt.Sprintf("wire=%d", wire), func(b *testing.B) {
			h := startBenchHarness(b, wire, 32)
			defer h.close()
			pubs := (b.N + benchFanout - 1) / benchFanout
			b.ReportAllocs()
			b.ResetTimer()
			// Publish in rounds with a blocking wait between them: deep
			// enough for batching to form, bounded so elastic buffers
			// stay small — and no spin-waiting, which on a small host
			// would drown the measurement in scheduler churn.
			const round = 256
			for published := 0; published < pubs; {
				n := round
				if pubs-published < n {
					n = pubs - published
				}
				h.target.Store(int64((published + n) * benchFanout))
				for i := 0; i < n; i++ {
					if err := h.src.Publish(diffTuple(0, published+i)); err != nil {
						b.Fatal(err)
					}
				}
				published += n
				h.waitResults(b, int64(published*benchFanout))
			}
		})
	}
}

// benchReport is the schema of BENCH_transport.json.
type benchReport struct {
	Bench           string  `json:"bench"`
	WireVersion     int     `json:"wire_version"`
	Subscribers     int     `json:"subscribers"`
	OfferedTuplesPS int     `json:"offered_tuples_per_s"`
	DurationS       float64 `json:"duration_s"`
	Results         int64   `json:"results"`
	NsPerResult     float64 `json:"ns_per_result"`
	AllocsPerResult float64 `json:"allocs_per_result"`
	P50Us           float64 `json:"p50_us"`
	P99Us           float64 `json:"p99_us"`
	P9999Us         float64 `json:"p9999_us"`
}

// TestSustainedTransportLoad holds a fixed offered rate through the v2
// wire for about a second and reports per-result delivery latency
// percentiles (publish→callback, tuple Ts carries the publish nanos).
// With COSMOS_BENCH_OUT set, the numbers are written there as JSON —
// scripts/bench_transport.sh points it at BENCH_transport.json.
func TestSustainedTransportLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load is slow; skipped in -short")
	}
	const (
		offeredPS = 5000
		duration  = time.Second
	)
	h := startBenchHarness(t, transport.WireMax, 1)
	defer h.close()

	// Delivery latencies go straight into the obs log-linear histogram —
	// lock-free on the callback path and exactly the structure the live
	// metrics surface reports, so the benchmark's p99.99 is measured with
	// the shipped machinery (≤1/32 relative bucket error).
	var lat obs.Histogram
	start := time.Now()
	h.onResult = func(tp cosmos.Tuple) {
		// Ts carries nanos-since-start stamped at publish time.
		lat.Observe(int64(time.Since(start) - time.Duration(tp.Ts)))
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	interval := time.Second / offeredPS
	published := 0
	for next := time.Duration(0); next < duration; next += interval {
		if sleep := next - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		tp := cosmos.MustTuple(sensordata.Schema(0), cosmos.Timestamp(time.Since(start)),
			cosmos.Int(0), cosmos.Float(100), cosmos.Float(50), cosmos.Float(500), cosmos.Float(10))
		if err := h.src.Publish(tp); err != nil {
			t.Fatal(err)
		}
		published++
	}
	want := int64(published * benchFanout)
	h.waitResults(t, want)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	snap := lat.Snapshot()
	p := func(q float64) time.Duration { return time.Duration(snap.Quantile(q)) }
	rep := benchReport{
		Bench:           "sustained-transport-load",
		WireVersion:     h.sub.WireVersion(),
		Subscribers:     benchFanout,
		OfferedTuplesPS: offeredPS,
		DurationS:       elapsed.Seconds(),
		Results:         want,
		NsPerResult:     float64(elapsed.Nanoseconds()) / float64(want),
		AllocsPerResult: float64(ms1.Mallocs-ms0.Mallocs) / float64(want),
		P50Us:           float64(p(0.50).Microseconds()),
		P99Us:           float64(p(0.99).Microseconds()),
		P9999Us:         float64(p(0.9999).Microseconds()),
	}
	t.Logf("sustained v%d: %d results in %.2fs, %.0f ns/result, %.1f allocs/result, p50 %.0fµs p99 %.0fµs p99.99 %.0fµs",
		rep.WireVersion, rep.Results, rep.DurationS, rep.NsPerResult, rep.AllocsPerResult, rep.P50Us, rep.P99Us, rep.P9999Us)
	if out := os.Getenv("COSMOS_BENCH_OUT"); out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
