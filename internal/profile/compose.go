package profile

import (
	"cosmos/internal/cql"
	"cosmos/internal/predicate"
)

// FromQuery composes the source-retrieval profile of a bound query
// (paper §4): for each source stream, the selection predicates applied to
// that stream become the filters, and the projection set is every
// attribute the query touches on that stream.
//
// For the paper's example
//
//	SELECT R.A, S.C FROM R [Now], S [Now] WHERE R.B=S.B AND R.A>10
//
// this yields S = {R, S}, P = {R.A, R.B, S.B, S.C}, F = {R.A > 10}.
//
// A self-join reads the same stream under two aliases; its per-alias
// demands MERGE (projection union, filter disjunction) rather than
// replace each other, since the network retrieves one copy of the stream
// serving both window operators.
func FromQuery(b *cql.Bound) *Profile {
	p := New()
	need := b.NeededAttrs()
	for _, ref := range b.From {
		var filter predicate.DNF
		if sel, ok := b.Sel[ref.Alias]; ok && !sel.IsTrue() {
			filter = sel
		}
		one := New()
		one.AddStream(ref.Stream, need[ref.Alias], filter)
		p.Merge(one)
	}
	return p
}

// ForResult composes the trivial profile a user submits to retrieve a
// (non-shared) result stream: the unique result stream name with no
// filter and no projection predicates (paper §4).
func ForResult(resultStream string) *Profile {
	p := New()
	p.AddStream(resultStream, nil, nil)
	return p
}
